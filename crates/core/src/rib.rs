//! Compact storage for the path-vector Adj-RIB-In.
//!
//! Candidate routes are the control plane's dominant memory consumer: every
//! byte per candidate is multiplied by `degree × dests × n`. The original
//! layout — `FxHashMap<NodeId, FxHashMap<NodeId, Candidate>>` — pays two
//! hash-map headers, per-entry hashing overhead and pointer-chasing for
//! every candidate. [`RibStore`] replaces it with
//!
//! * a per-node **destination interner** (`NodeId` → dense `u32` index),
//! * one **slab per neighbor**: a struct-of-arrays of `Candidate` fields
//!   (`cost`, `landmark_flag`, `path`, …) addressed by slab slot, kept
//!   dense with swap-remove, plus a `dest index → slot` position vector,
//! * a **forgetful eviction** primitive ([`RibStore::enforce`]) that trims
//!   a destination's candidate set down to the selected route plus a
//!   bounded alternate set, remembering (per destination) that information
//!   was discarded so the protocol can re-solicit it when needed
//!   (paper §4.2, forgetful routing),
//! * a per-destination **selection column** — the Loc-RIB as a *view* over
//!   the store: `dest index → (neighbor, cost, landmark flag, landmark
//!   distance, interned path id)` in dense parallel columns. The
//!   path-vector node used to mirror every best route into a
//!   `FxHashMap<NodeId, RouteEntry>` (~56 B payload per known destination
//!   plus map overhead, duplicated on top of the slab candidates); the
//!   column costs ~25 B per interned destination and `RouteEntry` is
//!   materialized only at export/forwarding boundaries
//!   ([`RibStore::selected_view`]).
//!
//! The selection columns are a *cache* of the selected candidate's fields,
//! not a pointer into the slabs: after the backing candidate is withdrawn
//! the cached values remain readable until the owner re-selects. That is
//! deliberate — the repairing path vector reads the previous best while
//! deciding how to heal (and, during a neighbor-down sweep, may transiently
//! export a not-yet-reprocessed destination's old route, behavior the churn
//! goldens bake in).
//!
//! The store is policy-free: which destinations are exempt from
//! forgetting (landmarks, vicinity members), when to send a
//! route-refresh, and what landmark flag the selection carries (origin
//! vs OR-merge) is decided by [`crate::path_vector::PathVectorNode`].
//! Selection order is a pure function of the candidate *set* (the
//! preference order is total), so replacing the nested maps cannot change
//! protocol behavior — the churn golden test locks this.

use disco_graph::{FxHashMap, InternedPath, NodeId, Weight};

/// A candidate route as held in the per-neighbor Adj-RIB-In. Identical to
/// [`crate::path_vector::RouteEntry`] minus the next hop (implied by which
/// neighbor's slab the candidate sits in).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Distance from this node to the destination via the neighbor.
    pub dist: Weight,
    /// Path from this node to the destination (this node first).
    pub path: InternedPath,
    /// Whether the destination is a landmark.
    pub dest_is_landmark: bool,
    /// The destination's distance to its own closest landmark.
    pub dest_landmark_dist: Weight,
}

/// Deterministic route preference: smaller distance, then shorter path,
/// then lexicographically smaller path. Total over distinct candidates
/// (paths from different neighbors differ in their second node), which is
/// what makes selection independent of iteration order.
pub(crate) fn preferred_parts(
    a_dist: Weight,
    a_path: &InternedPath,
    b_dist: Weight,
    b_path: &InternedPath,
) -> bool {
    if a_dist + 1e-12 < b_dist {
        return true;
    }
    if b_dist + 1e-12 < a_dist {
        return false;
    }
    a_path.cmp_route(b_path) == std::cmp::Ordering::Less
}

const ABSENT: u32 = u32::MAX;

/// Struct-of-arrays slab holding one neighbor's candidates. Slots `0..len`
/// are dense (occupied); `pos` maps an interned destination index to its
/// slot. The position index is a compact `u32 → u32` hash map rather than
/// a dense vector: a node's destination universe is the *union* of every
/// neighbor's exports, so per-neighbor occupancy is sparse (δ-fold so
/// under forgetful eviction) and dense position vectors would cost
/// `δ × dests × 4` bytes of mostly-empty slots per node.
#[derive(Debug, Clone, Default)]
struct NeighborSlab {
    /// Destination index → slot.
    pos: FxHashMap<u32, u32>,
    /// Slot → destination index (for swap-remove fixup and iteration).
    dest: Vec<u32>,
    /// Slot → distance (link weight already included).
    dist: Vec<Weight>,
    /// Slot → destination's own-landmark distance.
    lm_dist: Vec<Weight>,
    /// Slot → path (this node first).
    path: Vec<InternedPath>,
    /// Slot → landmark flag.
    lm_flag: Vec<bool>,
}

impl NeighborSlab {
    fn slot_of(&self, di: u32) -> Option<usize> {
        self.pos.get(&di).map(|&s| s as usize)
    }

    fn get(&self, di: u32) -> Option<Candidate> {
        let s = self.slot_of(di)?;
        Some(Candidate {
            dist: self.dist[s],
            path: self.path[s].clone(),
            dest_is_landmark: self.lm_flag[s],
            dest_landmark_dist: self.lm_dist[s],
        })
    }

    /// Insert or replace; returns the previous landmark flag if a candidate
    /// was replaced.
    fn insert(&mut self, di: u32, cand: &Candidate) -> Option<bool> {
        if let Some(s) = self.slot_of(di) {
            let was_lm = self.lm_flag[s];
            self.dist[s] = cand.dist;
            self.lm_dist[s] = cand.dest_landmark_dist;
            self.path[s] = cand.path.clone();
            self.lm_flag[s] = cand.dest_is_landmark;
            return Some(was_lm);
        }
        let s = self.dest.len() as u32;
        self.pos.insert(di, s);
        self.dest.push(di);
        self.dist.push(cand.dist);
        self.lm_dist.push(cand.dest_landmark_dist);
        self.path.push(cand.path.clone());
        self.lm_flag.push(cand.dest_is_landmark);
        None
    }

    /// Remove the candidate for `di`, keeping slots dense (swap-remove).
    /// Returns its landmark flag.
    fn remove(&mut self, di: u32) -> Option<bool> {
        let s = self.slot_of(di)?;
        let was_lm = self.lm_flag[s];
        let last = self.dest.len() - 1;
        self.pos.remove(&di);
        self.dest.swap_remove(s);
        self.dist.swap_remove(s);
        self.lm_dist.swap_remove(s);
        self.path.swap_remove(s);
        self.lm_flag.swap_remove(s);
        if s != last {
            // The former last slot moved into `s`; update its position.
            self.pos.insert(self.dest[s], s as u32);
        }
        Some(was_lm)
    }

    /// Approximate heap bytes held by this slab (positions + SoA columns;
    /// interned path cells are accounted by the arena, not here).
    fn approx_bytes(&self) -> usize {
        self.pos.capacity() * 10 // ~(4+4) B payload + control per slot
            + self.dest.capacity() * 4
            + self.dist.capacity() * 8
            + self.lm_dist.capacity() * 8
            + self.path.capacity() * 4
            + self.lm_flag.capacity()
    }
}

/// Per-node gauge of the candidate store, used by `exp_memory` to meter
/// control-plane state against the paper's `Θ(√(n log n))` bound.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RibStats {
    /// Candidates currently held across all neighbors.
    pub candidates: usize,
    /// Distinct destinations interned (live + holes awaiting compaction).
    pub dests_interned: usize,
    /// Destinations with a selected route (the Loc-RIB view's occupancy).
    pub selected: usize,
    /// Total path nodes across all candidates (each retains arena cells).
    pub path_nodes: usize,
    /// Approximate heap bytes of the Adj-RIB-In proper (slabs + interner;
    /// the selection columns are accounted separately).
    pub approx_bytes: usize,
    /// Approximate heap bytes of the per-destination selection columns —
    /// the Loc-RIB-as-a-view component of `exp_memory`'s byte accounting.
    pub selection_bytes: usize,
    /// Candidates evicted by the forgetful policy since construction.
    pub evictions: u64,
}

/// Borrowed view of the selected route for one destination — everything
/// the forwarding / export path needs, materialized into a
/// [`crate::path_vector::RouteEntry`] only at those boundaries.
#[derive(Debug)]
pub struct SelectedRoute<'a> {
    /// Neighbor the selected route goes through.
    pub next_hop: NodeId,
    /// Distance to the destination via that neighbor.
    pub dist: Weight,
    /// Destination's distance to its own closest landmark.
    pub dest_landmark_dist: Weight,
    /// Effective landmark flag (set by the owner's flag policy).
    pub dest_is_landmark: bool,
    /// Path from this node to the destination (this node first).
    pub path: &'a InternedPath,
}

/// The compact Adj-RIB-In: per-neighbor SoA slabs over interned
/// destination indexes. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct RibStore {
    /// Destination index → node id (compact: simulation node ids fit u32).
    dests: Vec<u32>,
    /// Destination node id → index.
    dest_idx: FxHashMap<u32, u32>,
    /// Per-neighbor slabs. A linear-scan vector, not a map: a node has
    /// `degree` slabs (≈8–20 on the evaluation topologies), and the
    /// per-message slab lookup beats hashing at that size while keeping
    /// perfect cache locality. All outputs derived from iteration are
    /// order-independent (the preference order is total), so the layout
    /// cannot change behavior.
    slabs: Vec<(NodeId, NeighborSlab)>,
    /// Occupied candidates across all slabs.
    total: usize,
    /// Per destination index: candidate count across neighbors.
    cand_count: Vec<u32>,
    /// Per destination index: the forgetful policy discarded candidates
    /// for this destination since the flag was last taken.
    evicted: Vec<bool>,
    /// Selection column (the Loc-RIB view), indexed by destination index:
    /// the selected route's neighbor (`ABSENT` = none selected) and the
    /// cached fields of its candidate. Cached, not dereferenced through
    /// the slab — see the module docs for why staleness is load-bearing.
    sel_nbr: Vec<u32>,
    /// Selected route's distance.
    sel_dist: Vec<Weight>,
    /// Selected route's destination-landmark distance.
    sel_lm_dist: Vec<Weight>,
    /// Selected route's effective landmark flag (owner's flag policy).
    sel_flag: Vec<bool>,
    /// Selected route's path (a reference-count bump on the slab's path).
    sel_path: Vec<Option<InternedPath>>,
    /// Destinations with a selection (`sel_nbr[i] != ABSENT`).
    sel_count: usize,
    /// Destinations with candidates, a pending evicted flag or a selection
    /// (the ones a compaction must keep) — maintained incrementally so the
    /// compaction trigger is O(1) per mutation.
    live_dests: usize,
    /// Candidates evicted by [`RibStore::enforce`] since construction.
    evictions: u64,
}

impl RibStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether destination index `i` must survive compaction.
    fn is_live_idx(&self, i: usize) -> bool {
        self.cand_count[i] > 0 || self.evicted[i] || self.sel_nbr[i] != ABSENT
    }

    /// Intern `d`, returning its dense index.
    fn dest_id(&mut self, d: NodeId) -> u32 {
        let key = d.0 as u32;
        debug_assert_eq!(key as usize, d.0, "node ids must fit u32");
        if let Some(&i) = self.dest_idx.get(&key) {
            return i;
        }
        let i = self.dests.len() as u32;
        self.dests.push(key);
        self.cand_count.push(0);
        self.evicted.push(false);
        self.sel_nbr.push(ABSENT);
        self.sel_dist.push(0.0);
        self.sel_lm_dist.push(0.0);
        self.sel_flag.push(false);
        self.sel_path.push(None);
        self.dest_idx.insert(key, i);
        i
    }

    /// Look up the interned index of `d`, if any.
    #[inline]
    fn idx_of(&self, d: NodeId) -> Option<usize> {
        self.dest_idx.get(&(d.0 as u32)).map(|&i| i as usize)
    }

    /// Intern `d` and return its dense destination index — the handle the
    /// hot message path threads through `insert_at` / `selected_*_at` /
    /// `select_from_at` so one interner probe serves the whole
    /// absorb→select→apply chain instead of one per accessor.
    ///
    /// Validity: indexes are stable under insertions and selections but
    /// remapped by the occupancy-triggered compaction, which only the
    /// *removal* paths ([`RibStore::remove`], [`RibStore::remove_neighbor`],
    /// [`RibStore::enforce`], [`RibStore::clear_selected`] via
    /// [`RibStore::select_best`]) can trigger — so a handle must not be
    /// held across those.
    #[inline]
    pub fn intern(&mut self, d: NodeId) -> u32 {
        self.dest_id(d)
    }

    /// The interned index of `d`, if any (see [`RibStore::intern`] for the
    /// validity rules).
    #[inline]
    pub fn idx(&self, d: NodeId) -> Option<u32> {
        self.idx_of(d).map(|i| i as u32)
    }

    #[inline]
    fn slab_of(&self, nbr: NodeId) -> Option<&NeighborSlab> {
        self.slabs.iter().find(|(n, _)| *n == nbr).map(|(_, s)| s)
    }

    #[inline]
    fn slab_mut(&mut self, nbr: NodeId) -> Option<&mut NeighborSlab> {
        self.slabs
            .iter_mut()
            .find(|(n, _)| *n == nbr)
            .map(|(_, s)| s)
    }

    /// The slab for `nbr`, created on first use.
    fn slab_entry(&mut self, nbr: NodeId) -> &mut NeighborSlab {
        match self.slabs.iter().position(|(n, _)| *n == nbr) {
            Some(i) => &mut self.slabs[i].1,
            None => {
                self.slabs.push((nbr, NeighborSlab::default()));
                &mut self.slabs.last_mut().expect("just pushed").1
            }
        }
    }

    /// Candidates currently held across all neighbors.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the store holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of candidates held for destination `d` across neighbors.
    pub fn count_for(&self, d: NodeId) -> usize {
        self.idx_of(d).map_or(0, |i| self.cand_count[i] as usize)
    }

    /// The candidate neighbor `nbr` holds for `d`, if any (materialized;
    /// the path copy is a reference-count bump).
    pub fn get(&self, nbr: NodeId, d: NodeId) -> Option<Candidate> {
        let di = self.idx_of(d)?;
        self.slab_of(nbr)?.get(di as u32)
    }

    /// Insert or replace the candidate `nbr` announced for `d`. Returns the
    /// replaced candidate's landmark flag, like `HashMap::insert`.
    pub fn insert(&mut self, nbr: NodeId, d: NodeId, cand: &Candidate) -> Option<bool> {
        let di = self.dest_id(d);
        self.insert_at(nbr, di, cand)
    }

    /// [`RibStore::insert`] for an already-interned destination index.
    pub fn insert_at(&mut self, nbr: NodeId, di: u32, cand: &Candidate) -> Option<bool> {
        let old = self.slab_entry(nbr).insert(di, cand);
        if old.is_none() {
            self.total += 1;
            let was_live = self.is_live_idx(di as usize);
            self.cand_count[di as usize] += 1;
            if !was_live {
                self.live_dests += 1;
            }
        }
        old
    }

    /// Remove the candidate `nbr` holds for `d`; returns its landmark flag.
    pub fn remove(&mut self, nbr: NodeId, d: NodeId) -> Option<bool> {
        let di = self.idx_of(d)? as u32;
        let old = self.slab_mut(nbr)?.remove(di)?;
        self.total -= 1;
        self.drop_count(di);
        self.maybe_compact();
        Some(old)
    }

    /// Decrement a destination's candidate count, tracking liveness.
    fn drop_count(&mut self, di: u32) {
        self.cand_count[di as usize] -= 1;
        if !self.is_live_idx(di as usize) {
            self.live_dests -= 1;
        }
    }

    /// Drop every candidate learned from `nbr`; returns the affected
    /// `(destination, landmark flag)` pairs sorted by destination id
    /// (deterministic re-selection order for the caller).
    pub fn remove_neighbor(&mut self, nbr: NodeId) -> Vec<(NodeId, bool)> {
        let Some(i) = self.slabs.iter().position(|(n, _)| *n == nbr) else {
            return Vec::new();
        };
        let (_, slab) = self.slabs.swap_remove(i);
        let mut out: Vec<(NodeId, bool)> = Vec::with_capacity(slab.dest.len());
        for (&di, &lm) in slab.dest.iter().zip(&slab.lm_flag) {
            self.drop_count(di);
            out.push((NodeId(self.dests[di as usize] as usize), lm));
        }
        self.total -= out.len();
        out.sort_unstable_by_key(|&(d, _)| d);
        self.maybe_compact();
        out
    }

    /// The most-preferred candidate's `(neighbor, slot)` for destination
    /// index `di`. Deterministic: the preference order is total, so the
    /// minimum is independent of slab iteration order.
    fn best_slot(&self, di: u32) -> Option<(NodeId, usize)> {
        let mut best: Option<(NodeId, usize, &NeighborSlab)> = None;
        for &(nbr, ref slab) in &self.slabs {
            let Some(s) = slab.slot_of(di) else { continue };
            let better = match &best {
                None => true,
                Some((_, bs, bslab)) => preferred_parts(
                    slab.dist[s],
                    &slab.path[s],
                    bslab.dist[*bs],
                    &bslab.path[*bs],
                ),
            };
            if better {
                best = Some((nbr, s, slab));
            }
        }
        best.map(|(nbr, s, _)| (nbr, s))
    }

    /// The most-preferred candidate for `d` over all neighbors, with the
    /// neighbor that announced it.
    pub fn best_for(&self, d: NodeId) -> Option<(NodeId, Candidate)> {
        let di = self.idx_of(d)? as u32;
        let (nbr, s) = self.best_slot(di)?;
        let slab = self.slab_of(nbr).expect("selected neighbor has a slab");
        Some((
            nbr,
            Candidate {
                dist: slab.dist[s],
                path: slab.path[s].clone(),
                dest_is_landmark: slab.lm_flag[s],
                dest_landmark_dist: slab.lm_dist[s],
            },
        ))
    }

    // ---- the Loc-RIB view (per-destination selection column) ----

    /// Write the selection column for `di` from `nbr`'s slab slot `s`,
    /// with the effective landmark flag `flag`.
    fn write_selection(&mut self, di: usize, nbr: NodeId, s: usize, flag: bool) {
        let slab = self.slab_of(nbr).expect("selected neighbor has a slab");
        let (dist, lm_dist) = (slab.dist[s], slab.lm_dist[s]);
        let path = slab.path[s].clone();
        if self.sel_nbr[di] == ABSENT {
            self.sel_count += 1;
        }
        // A selected dest always has a candidate, so it was already live.
        debug_assert!(self.cand_count[di] > 0);
        self.sel_nbr[di] = nbr.0 as u32;
        self.sel_dist[di] = dist;
        self.sel_lm_dist[di] = lm_dist;
        self.sel_flag[di] = flag;
        self.sel_path[di] = Some(path);
    }

    /// Point the selection at `nbr`'s current candidate for `d` (which
    /// must exist), caching its fields; `flag` is the effective landmark
    /// flag under the owner's flag policy.
    pub fn select(&mut self, d: NodeId, nbr: NodeId, flag: bool) {
        let di = self.idx_of(d).expect("selecting an unknown destination");
        let s = self
            .slab_of(nbr)
            .expect("selected neighbor has a slab")
            .slot_of(di as u32)
            .expect("selected neighbor must hold a candidate");
        self.write_selection(di, nbr, s, flag);
    }

    /// Like [`RibStore::select`], but taking the selected candidate's
    /// fields from `cand` — which the caller just inserted into `nbr`'s
    /// slab for the destination indexed `di` — instead of re-reading the
    /// slab (two probes on the hottest protocol path, promotion of a
    /// fresh announcement). Takes the candidate by value: its path handle
    /// moves into the selection column instead of paying a
    /// reference-count round trip.
    pub fn select_from_at(&mut self, di: u32, nbr: NodeId, cand: Candidate, flag: bool) {
        let di = di as usize;
        debug_assert!(
            self.slab_of(nbr)
                .is_some_and(|s| s.slot_of(di as u32).is_some()),
            "selected neighbor must hold a candidate"
        );
        if self.sel_nbr[di] == ABSENT {
            self.sel_count += 1;
        }
        debug_assert!(self.cand_count[di] > 0);
        self.sel_nbr[di] = nbr.0 as u32;
        self.sel_dist[di] = cand.dist;
        self.sel_lm_dist[di] = cand.dest_landmark_dist;
        self.sel_flag[di] = flag;
        self.sel_path[di] = Some(cand.path);
    }

    /// Recompute the selection for `d` as the most-preferred candidate
    /// over all neighbors (cleared if none is left). The flag is the
    /// winning candidate's own; the owner overrides it afterwards when it
    /// runs the OR-merge policy. Returns whether a route is now selected.
    pub fn select_best(&mut self, d: NodeId) -> bool {
        let Some(di) = self.idx_of(d) else {
            return false;
        };
        match self.best_slot(di as u32) {
            Some((nbr, s)) => {
                let flag = self.slab_of(nbr).expect("best slab exists").lm_flag[s];
                self.write_selection(di, nbr, s, flag);
                true
            }
            None => {
                self.clear_selected(d);
                false
            }
        }
    }

    /// Drop the selection for `d`, if any.
    pub fn clear_selected(&mut self, d: NodeId) {
        let Some(di) = self.idx_of(d) else {
            return;
        };
        if self.sel_nbr[di] == ABSENT {
            return;
        }
        self.sel_nbr[di] = ABSENT;
        self.sel_path[di] = None;
        self.sel_count -= 1;
        if !self.is_live_idx(di) {
            self.live_dests -= 1;
        }
        self.maybe_compact();
    }

    /// The selected route's next hop for `d`, if a route is selected.
    #[inline]
    pub fn selected_hop(&self, d: NodeId) -> Option<NodeId> {
        self.selected_hop_at(self.idx_of(d)? as u32)
    }

    /// [`RibStore::selected_hop`] by destination index.
    #[inline]
    pub fn selected_hop_at(&self, di: u32) -> Option<NodeId> {
        let nbr = self.sel_nbr[di as usize];
        (nbr != ABSENT).then_some(NodeId(nbr as usize))
    }

    /// The full selected-route view for `d` (one interner probe).
    #[inline]
    pub fn selected_view(&self, d: NodeId) -> Option<SelectedRoute<'_>> {
        self.selected_view_at(self.idx_of(d)? as u32)
    }

    /// [`RibStore::selected_view`] by destination index.
    #[inline]
    pub fn selected_view_at(&self, di: u32) -> Option<SelectedRoute<'_>> {
        let di = di as usize;
        let nbr = self.sel_nbr[di];
        if nbr == ABSENT {
            return None;
        }
        Some(SelectedRoute {
            next_hop: NodeId(nbr as usize),
            dist: self.sel_dist[di],
            dest_landmark_dist: self.sel_lm_dist[di],
            dest_is_landmark: self.sel_flag[di],
            path: self.sel_path[di].as_ref().expect("selection holds a path"),
        })
    }

    /// Visit every destination with a selected route, in interning order —
    /// the forwarding-table compile sweep. The visited view is the cached
    /// selection column (see the module docs on load-bearing staleness),
    /// which is exactly the contract a compiled data plane wants: the
    /// routes this node is currently *serving*, not the candidates a
    /// repair in flight may be about to select.
    pub fn for_each_selected(&self, mut f: impl FnMut(NodeId, SelectedRoute<'_>)) {
        for i in 0..self.dests.len() {
            let nbr = self.sel_nbr[i];
            if nbr == ABSENT {
                continue;
            }
            f(
                NodeId(self.dests[i] as usize),
                SelectedRoute {
                    next_hop: NodeId(nbr as usize),
                    dist: self.sel_dist[i],
                    dest_landmark_dist: self.sel_lm_dist[i],
                    dest_is_landmark: self.sel_flag[i],
                    path: self.sel_path[i].as_ref().expect("selection holds a path"),
                },
            );
        }
    }

    /// The selected route's `(distance, landmark flag)` for `d` — the two
    /// fields the owner's ordered mirrors key on.
    #[inline]
    pub fn selected_parts(&self, d: NodeId) -> Option<(Weight, bool)> {
        self.selected_parts_at(self.idx_of(d)? as u32)
    }

    /// [`RibStore::selected_parts`] by destination index.
    #[inline]
    pub fn selected_parts_at(&self, di: u32) -> Option<(Weight, bool)> {
        let di = di as usize;
        (self.sel_nbr[di] != ABSENT).then(|| (self.sel_dist[di], self.sel_flag[di]))
    }

    /// Approximate heap bytes of the selection columns alone — the
    /// Loc-RIB view: ~25 B per interned destination (4 nbr + 8 dist +
    /// 8 lm-dist + 1 flag + 4 `Option<path id>`; the path handle's
    /// `NonZeroU32` niche keeps the `Option` at 4 bytes), vs the ~56 B
    /// payload plus hash-map overhead per *known* destination of the
    /// deleted `best: FxHashMap<NodeId, RouteEntry>`.
    pub fn selection_bytes(&self) -> usize {
        self.sel_nbr.capacity() * 4
            + self.sel_dist.capacity() * 8
            + self.sel_lm_dist.capacity() * 8
            + self.sel_flag.capacity()
            + self.sel_path.capacity() * std::mem::size_of::<Option<InternedPath>>()
    }

    /// Re-write the selection's effective landmark flag (the route itself
    /// is untouched). No-op if nothing is selected.
    pub fn set_selected_flag(&mut self, d: NodeId, flag: bool) {
        if let Some(di) = self.idx_of(d) {
            if self.sel_nbr[di] != ABSENT {
                self.sel_flag[di] = flag;
            }
        }
    }

    /// All candidates for `d` as `(neighbor, candidate)`, sorted by
    /// preference (best first). Used by the eviction policy and tests.
    ///
    /// The sort key is `(total_cmp(dist), path order)` — a genuine total
    /// order, unlike [`preferred_parts`], whose `1e-12` tolerance band is
    /// not transitive and would hand `sort_unstable_by` a comparison
    /// cycle on float-accumulated near-ties (a panic since Rust 1.81).
    /// The two orders agree everywhere outside that band — in particular
    /// on exact ties, the only ties unit-weight topologies produce — and
    /// [`RibStore::enforce`] force-keeps the *selected* candidate
    /// regardless of rank, so a near-tie can only reorder alternates.
    pub fn candidates_for(&self, d: NodeId) -> Vec<(NodeId, Candidate)> {
        let Some(di) = self.idx_of(d) else {
            return Vec::new();
        };
        let mut out: Vec<(NodeId, Candidate)> = self
            .slabs
            .iter()
            .filter_map(|&(nbr, ref slab)| slab.get(di as u32).map(|c| (nbr, c)))
            .collect();
        out.sort_unstable_by(|a, b| {
            a.1.dist
                .total_cmp(&b.1.dist)
                .then_with(|| a.1.path.cmp_route(&b.1.path))
        });
        out
    }

    /// Forgetful eviction (§4.2): keep at most `keep` candidates for `d` —
    /// always including the *selected* candidate (read from the selection
    /// column), whatever its rank — evicting the least-preferred rest.
    /// Marks `d` as having forgotten information and returns the evicted
    /// `(neighbor, landmark flag)` pairs so the caller can fix up its flag
    /// counters.
    pub fn enforce(&mut self, d: NodeId, keep: usize) -> Vec<(NodeId, bool)> {
        let Some(di) = self.idx_of(d) else {
            return Vec::new();
        };
        let di = di as u32;
        if (self.cand_count[di as usize] as usize) <= keep {
            return Vec::new();
        }
        let mut ranked = self.candidates_for(d);
        // The selected route is never evicted, whatever its rank.
        if let Some(hop) = self.selected_hop(d) {
            if let Some(p) = ranked.iter().position(|&(nbr, _)| nbr == hop) {
                let sel = ranked.remove(p);
                ranked.insert(0, sel);
            }
        }
        let mut removed = Vec::with_capacity(ranked.len().saturating_sub(keep));
        for (nbr, _) in ranked.drain(keep.max(1)..) {
            let was_lm = self
                .slab_mut(nbr)
                .and_then(|s| s.remove(di))
                .expect("ranked candidate must exist");
            self.total -= 1;
            self.drop_count(di);
            self.evictions += 1;
            removed.push((nbr, was_lm));
        }
        if !removed.is_empty() {
            self.evicted[di as usize] = true;
        }
        self.maybe_compact();
        removed
    }

    /// Whether the forgetful policy has discarded candidates for `d` since
    /// the flag was last taken; clears the flag. The caller re-solicits
    /// (route-refresh) exactly when this returns true after a loss.
    pub fn take_evicted(&mut self, d: NodeId) -> bool {
        match self.idx_of(d) {
            Some(di) => {
                let was = std::mem::replace(&mut self.evicted[di], false);
                if was && !self.is_live_idx(di) {
                    self.live_dests -= 1;
                }
                was
            }
            None => false,
        }
    }

    /// Gauge snapshot for `exp_memory`.
    pub fn stats(&self) -> RibStats {
        let path_nodes = self
            .slabs
            .iter()
            .flat_map(|(_, s)| s.path.iter())
            .map(InternedPath::len)
            .sum();
        let approx_bytes = self
            .slabs
            .iter()
            .map(|(_, s)| s.approx_bytes())
            .sum::<usize>()
            + self.dests.capacity() * 4
            + self.cand_count.capacity() * 4
            + self.evicted.capacity()
            + self.dest_idx.len() * 12;
        let selection_bytes = self.selection_bytes();
        RibStats {
            candidates: self.total,
            dests_interned: self.dests.len(),
            selected: self.sel_count,
            path_nodes,
            approx_bytes,
            selection_bytes,
            evictions: self.evictions,
        }
    }

    /// Rebuild the destination interner when most interned destinations no
    /// longer hold candidates (long churn runs otherwise grow the position
    /// vectors with the union of every destination ever seen). Triggered
    /// from the mutation paths by occupancy, so behavior stays a pure
    /// function of the operation sequence.
    fn maybe_compact(&mut self) {
        let live = self.live_dests;
        debug_assert_eq!(
            live,
            (0..self.dests.len())
                .filter(|&i| self.is_live_idx(i))
                .count()
        );
        if self.dests.len() < 64 || live * 4 >= self.dests.len() {
            return;
        }
        let mut remap = vec![ABSENT; self.dests.len()];
        let mut dests = Vec::with_capacity(live);
        let mut cand_count = Vec::with_capacity(live);
        let mut evicted = Vec::with_capacity(live);
        let mut sel_nbr = Vec::with_capacity(live);
        let mut sel_dist = Vec::with_capacity(live);
        let mut sel_lm_dist = Vec::with_capacity(live);
        let mut sel_flag = Vec::with_capacity(live);
        let mut sel_path = Vec::with_capacity(live);
        let mut dest_idx = FxHashMap::default();
        // (Indexing, not iterators: the loop reads five parallel columns
        // and writes `remap` by the same index.)
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.dests.len() {
            if !self.is_live_idx(i) {
                continue;
            }
            let ni = dests.len() as u32;
            remap[i] = ni;
            dests.push(self.dests[i]);
            cand_count.push(self.cand_count[i]);
            evicted.push(self.evicted[i]);
            sel_nbr.push(self.sel_nbr[i]);
            sel_dist.push(self.sel_dist[i]);
            sel_lm_dist.push(self.sel_lm_dist[i]);
            sel_flag.push(self.sel_flag[i]);
            sel_path.push(self.sel_path[i].take());
            dest_idx.insert(self.dests[i], ni);
        }
        for (_, slab) in self.slabs.iter_mut() {
            let mut pos = FxHashMap::default();
            for s in 0..slab.dest.len() {
                let ni = remap[slab.dest[s] as usize];
                debug_assert!(ni != ABSENT, "occupied dest must survive compaction");
                slab.dest[s] = ni;
                pos.insert(ni, s as u32);
            }
            slab.pos = pos;
        }
        self.live_dests = dests.len();
        self.dests = dests;
        self.cand_count = cand_count;
        self.evicted = evicted;
        self.sel_nbr = sel_nbr;
        self.sel_dist = sel_dist;
        self.sel_lm_dist = sel_lm_dist;
        self.sel_flag = sel_flag;
        self.sel_path = sel_path;
        self.dest_idx = dest_idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(path: &[usize], dist: Weight, lm: bool) -> Candidate {
        let nodes: Vec<NodeId> = path.iter().map(|&i| NodeId(i)).collect();
        Candidate {
            dist,
            path: InternedPath::from_slice(&nodes),
            dest_is_landmark: lm,
            dest_landmark_dist: Weight::INFINITY,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut rib = RibStore::new();
        let (n1, n2, d) = (NodeId(1), NodeId(2), NodeId(9));
        assert!(rib.is_empty());
        assert_eq!(rib.insert(n1, d, &cand(&[0, 1, 9], 2.0, false)), None);
        assert_eq!(rib.insert(n2, d, &cand(&[0, 2, 9], 3.0, true)), None);
        assert_eq!(rib.len(), 2);
        assert_eq!(rib.count_for(d), 2);
        // Replacement returns the old flag.
        assert_eq!(rib.insert(n2, d, &cand(&[0, 2, 9], 1.0, false)), Some(true));
        assert_eq!(rib.len(), 2);
        let got = rib.get(n2, d).unwrap();
        assert_eq!(got.dist, 1.0);
        assert!(!got.dest_is_landmark);
        assert_eq!(rib.remove(n2, d), Some(false));
        assert_eq!(rib.remove(n2, d), None);
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.count_for(d), 1);
    }

    #[test]
    fn best_for_is_preference_minimum() {
        let mut rib = RibStore::new();
        let d = NodeId(9);
        rib.insert(NodeId(1), d, &cand(&[0, 1, 9], 2.0, false));
        rib.insert(NodeId(2), d, &cand(&[0, 2, 9], 1.5, false));
        rib.insert(NodeId(3), d, &cand(&[0, 3, 9], 1.5, false));
        let (nbr, best) = rib.best_for(d).unwrap();
        // 1.5 ties; path [0,2,9] < [0,3,9] lexicographically.
        assert_eq!(nbr, NodeId(2));
        assert_eq!(best.dist, 1.5);
        let ranked = rib.candidates_for(d);
        assert_eq!(
            ranked.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(3), NodeId(1)]
        );
    }

    #[test]
    fn remove_neighbor_reports_sorted_dests() {
        let mut rib = RibStore::new();
        rib.insert(NodeId(1), NodeId(7), &cand(&[0, 1, 7], 2.0, true));
        rib.insert(NodeId(1), NodeId(3), &cand(&[0, 1, 3], 2.0, false));
        rib.insert(NodeId(2), NodeId(3), &cand(&[0, 2, 3], 2.0, false));
        let lost = rib.remove_neighbor(NodeId(1));
        assert_eq!(lost, vec![(NodeId(3), false), (NodeId(7), true)]);
        assert_eq!(rib.len(), 1);
        assert!(rib.remove_neighbor(NodeId(1)).is_empty());
    }

    #[test]
    fn enforce_keeps_selected_and_best_alternates() {
        let mut rib = RibStore::new();
        let d = NodeId(9);
        for (i, dist) in [(1, 4.0), (2, 1.0), (3, 2.0), (4, 3.0)] {
            rib.insert(NodeId(i), d, &cand(&[0, i, 9], dist, false));
        }
        // Keep 2 (selected + 1 alternate); the selected hop is the worst
        // candidate (forced survivor, read from the selection column).
        rib.select(d, NodeId(1), false);
        let removed = rib.enforce(d, 2);
        let removed_nbrs: Vec<NodeId> = removed.iter().map(|&(n, _)| n).collect();
        assert_eq!(removed_nbrs, vec![NodeId(3), NodeId(4)]);
        assert!(rib.get(NodeId(1), d).is_some(), "selected survives");
        assert!(rib.get(NodeId(2), d).is_some(), "best alternate survives");
        assert_eq!(rib.count_for(d), 2);
        assert!(rib.take_evicted(d));
        assert!(!rib.take_evicted(d), "flag is taken once");
        // Under budget: no-op, flag untouched.
        assert!(rib.enforce(d, 2).is_empty());
        assert!(!rib.take_evicted(d));
        assert_eq!(rib.stats().evictions, 2);
    }

    #[test]
    fn selection_view_tracks_select_and_clear() {
        let mut rib = RibStore::new();
        let d = NodeId(9);
        rib.insert(NodeId(1), d, &cand(&[0, 1, 9], 2.0, false));
        rib.insert(NodeId(2), d, &cand(&[0, 2, 9], 1.0, true));
        assert!(rib.selected_hop(d).is_none());
        assert!(rib.select_best(d));
        assert_eq!(rib.selected_hop(d), Some(NodeId(2)));
        let v = rib.selected_view(d).unwrap();
        assert_eq!(v.dist, 1.0);
        assert!(v.dest_is_landmark);
        assert_eq!(v.path.to_vec(), vec![NodeId(0), NodeId(2), NodeId(9)]);
        assert_eq!(rib.selected_parts(d), Some((1.0, true)));
        // The owner's flag policy can override the cached flag.
        rib.set_selected_flag(d, false);
        assert_eq!(rib.selected_parts(d), Some((1.0, false)));
        // Explicit selection of a non-best candidate is allowed (the owner
        // decides); stats count the occupancy.
        rib.select(d, NodeId(1), false);
        assert_eq!(rib.selected_hop(d), Some(NodeId(1)));
        assert_eq!(rib.stats().selected, 1);
        rib.clear_selected(d);
        assert!(rib.selected_view(d).is_none());
        assert_eq!(rib.stats().selected, 0);
        assert!(rib.stats().selection_bytes > 0);
    }

    /// The selection column is a cache: after the backing candidate is
    /// removed the cached fields stay readable (the repairing path vector
    /// reads the previous best while healing), until a reselect.
    #[test]
    fn selection_survives_candidate_removal_until_reselect() {
        let mut rib = RibStore::new();
        let d = NodeId(9);
        rib.insert(NodeId(1), d, &cand(&[0, 1, 9], 2.0, false));
        rib.insert(NodeId(2), d, &cand(&[0, 2, 9], 3.0, false));
        assert!(rib.select_best(d));
        assert_eq!(rib.selected_hop(d), Some(NodeId(1)));
        rib.remove(NodeId(1), d);
        let v = rib.selected_view(d).expect("stale view still readable");
        assert_eq!(v.next_hop, NodeId(1));
        assert_eq!(v.dist, 2.0);
        assert!(rib.select_best(d), "reselect falls back to the alternate");
        assert_eq!(rib.selected_hop(d), Some(NodeId(2)));
        // Total loss clears the selection.
        rib.remove_neighbor(NodeId(2));
        assert!(!rib.select_best(d));
        assert!(rib.selected_hop(d).is_none());
    }

    /// Compaction must keep destinations whose only liveness is a (stale)
    /// selection, and carry the selection columns across the remap.
    #[test]
    fn compaction_preserves_selections() {
        let mut rib = RibStore::new();
        let nbr = NodeId(1);
        for i in 0..200 {
            rib.insert(nbr, NodeId(1000 + i), &cand(&[0, 1, 1000 + i], 2.0, false));
        }
        rib.select_best(NodeId(1000));
        rib.select_best(NodeId(1199));
        // Removing the neighbor wholesale leaves the two selections as the
        // only liveness of their destinations; the sweep's removals push
        // occupancy below the compaction threshold.
        rib.remove_neighbor(nbr);
        assert!(rib.stats().dests_interned < 64, "compaction must have run");
        for d in [NodeId(1000), NodeId(1199)] {
            let v = rib.selected_view(d).expect("selection survives compaction");
            assert_eq!(v.next_hop, nbr);
            assert_eq!(v.path.last(), d);
        }
        assert_eq!(rib.stats().selected, 2);
        // Reselecting after total loss clears them and frees the dests.
        assert!(!rib.select_best(NodeId(1000)));
        assert!(!rib.select_best(NodeId(1199)));
        assert_eq!(rib.stats().selected, 0);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut rib = RibStore::new();
        let nbr = NodeId(1);
        for i in 0..200 {
            rib.insert(nbr, NodeId(1000 + i), &cand(&[0, 1, 1000 + i], 2.0, false));
        }
        // Remove most destinations to trigger compaction, keep a few.
        for i in 0..190 {
            rib.remove(nbr, NodeId(1000 + i));
        }
        assert!(
            rib.stats().dests_interned < 64,
            "interner must shrink, still {} dests",
            rib.stats().dests_interned
        );
        for i in 190..200 {
            let c = rib.get(nbr, NodeId(1000 + i)).expect("survivor present");
            assert_eq!(c.path.last(), NodeId(1000 + i));
        }
        assert_eq!(rib.len(), 10);
        // Interning new destinations after compaction still works.
        rib.insert(nbr, NodeId(5000), &cand(&[0, 1, 5000], 1.0, false));
        assert_eq!(rib.best_for(NodeId(5000)).unwrap().0, nbr);
    }
}
