//! Landmark selection (paper §4.2).
//!
//! A landmark is a node to which all nodes know shortest paths; end-to-end
//! routes have the form `s ; ℓ ; t`. Landmarks are selected uniformly at
//! random by each node locally and independently: a node draws `p ∈ [0,1]`
//! and becomes a landmark iff `p < √(ln n / n)`, so the expected number of
//! landmarks is `√(n ln n)` and a Chernoff bound gives `Θ(√(n ln n))` with
//! high probability.
//!
//! Because `n` changes over time, a node re-evaluates its landmark status
//! only when its estimate of `n` has changed by at least a factor of 2
//! since the last flip ([`LandmarkStatus`]), amortising landmark churn over
//! `Ω(n)` joins/leaves.

use crate::config::DiscoConfig;
use disco_graph::NodeId;
use disco_sim::rng::rng_for;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RNG stream id for landmark election (see `disco_sim::rng`).
const LANDMARK_STREAM: u64 = 0x11;

/// Decide whether node `v` elects itself landmark, exactly as each node
/// would locally: a deterministic pseudo-random draw from the experiment
/// seed compared against `√(ln n / n)`. `n_estimate` is the node's own
/// estimate of the network size.
pub fn elects_itself(v: NodeId, n_estimate: usize, cfg: &DiscoConfig) -> bool {
    let mut rng = rng_for(cfg.seed, LANDMARK_STREAM, v.0 as u64);
    let p: f64 = rng.gen();
    p < cfg.landmark_probability(n_estimate)
}

/// Select the landmark set for an `n`-node network in which every node uses
/// the same estimate of `n`. Returns the landmark ids in increasing order.
///
/// Guarantee: the result is never empty — if the random draws elect nobody
/// (possible only for tiny `n`), the deterministically lowest-id node is
/// promoted so the protocol stays well-defined.
pub fn select_landmarks(n: usize, cfg: &DiscoConfig) -> Vec<NodeId> {
    select_landmarks_with_estimates(n, cfg, |_| n)
}

/// The landmark set as a hash set for membership tests — the form every
/// simulator harness needs to hand each node its own landmark status
/// (`lm_set.contains(&v)`) when constructing protocol instances.
/// `FxHashSet` like every other simulator-internal map (deterministic,
/// no SipHash cost on the per-node probe during engine construction).
pub fn landmark_set(landmarks: &[NodeId]) -> disco_graph::FxHashSet<NodeId> {
    landmarks.iter().copied().collect()
}

/// Landmark selection where node `v` believes the network has
/// `estimate(v)` nodes — used by the robustness experiment that injects
/// error into the estimate of `n` (§5.2).
pub fn select_landmarks_with_estimates(
    n: usize,
    cfg: &DiscoConfig,
    estimate: impl Fn(NodeId) -> usize,
) -> Vec<NodeId> {
    let mut landmarks: Vec<NodeId> = (0..n)
        .map(NodeId)
        .filter(|&v| elects_itself(v, estimate(v), cfg))
        .collect();
    if landmarks.is_empty() && n > 0 {
        landmarks.push(NodeId(0));
    }
    landmarks
}

/// Per-node landmark status with the ×2 hysteresis rule of §4.2: the status
/// is re-drawn only when the node's estimate of `n` has changed by at least
/// a factor of two since the last decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LandmarkStatus {
    node: NodeId,
    is_landmark: bool,
    n_at_last_decision: usize,
}

impl LandmarkStatus {
    /// Initial decision for `node` with estimate `n_estimate`.
    pub fn new(node: NodeId, n_estimate: usize, cfg: &DiscoConfig) -> Self {
        LandmarkStatus {
            node,
            is_landmark: elects_itself(node, n_estimate, cfg),
            n_at_last_decision: n_estimate.max(1),
        }
    }

    /// Status carried over from an externally-made decision (e.g. a
    /// landmark set selected up front by the experiment harness), anchored
    /// at `n_estimate` for the ×2 hysteresis of future re-decisions.
    pub fn assumed(node: NodeId, is_landmark: bool, n_estimate: usize) -> Self {
        LandmarkStatus {
            node,
            is_landmark,
            n_at_last_decision: n_estimate.max(1),
        }
    }

    /// Whether the node currently serves as a landmark.
    pub fn is_landmark(&self) -> bool {
        self.is_landmark
    }

    /// The estimate of `n` at the time of the last (re-)decision.
    pub fn n_at_last_decision(&self) -> usize {
        self.n_at_last_decision
    }

    /// Update with a fresh estimate of `n`. The decision is re-drawn only
    /// when the estimate changed by ≥ 2× in either direction; returns `true`
    /// if the landmark status flipped (which requires re-announcing or
    /// withdrawing the landmark routes).
    pub fn update_estimate(&mut self, n_estimate: usize, cfg: &DiscoConfig) -> bool {
        let n_estimate = n_estimate.max(1);
        let old = self.n_at_last_decision as f64;
        let new = n_estimate as f64;
        if new < old * 2.0 && new > old / 2.0 {
            return false;
        }
        let was = self.is_landmark;
        self.is_landmark = elects_itself(self.node, n_estimate, cfg);
        self.n_at_last_decision = n_estimate;
        was != self.is_landmark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_landmark_count_is_sqrt_n_log_n() {
        let cfg = DiscoConfig::seeded(3);
        let n = 4096;
        let l = select_landmarks(n, &cfg).len() as f64;
        let expect = ((n as f64) * (n as f64).ln()).sqrt(); // ≈ 184
        assert!(
            l > expect * 0.6 && l < expect * 1.4,
            "landmarks {l}, expected ≈ {expect}"
        );
    }

    #[test]
    fn selection_is_deterministic_in_seed() {
        let cfg = DiscoConfig::seeded(11);
        assert_eq!(select_landmarks(1000, &cfg), select_landmarks(1000, &cfg));
        let other = DiscoConfig::seeded(12);
        assert_ne!(select_landmarks(1000, &cfg), select_landmarks(1000, &other));
    }

    #[test]
    fn never_empty() {
        let cfg = DiscoConfig::seeded(0);
        for n in 1..20 {
            assert!(!select_landmarks(n, &cfg).is_empty(), "n={n}");
        }
    }

    #[test]
    fn landmarks_sorted_and_in_range() {
        let cfg = DiscoConfig::seeded(5);
        let l = select_landmarks(2000, &cfg);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert!(l.iter().all(|v| v.0 < 2000));
    }

    #[test]
    fn hysteresis_suppresses_small_changes() {
        let cfg = DiscoConfig::seeded(7);
        let mut status = LandmarkStatus::new(NodeId(5), 1000, &cfg);
        let before = status.is_landmark();
        // Estimate drifts by < 2x: no re-decision, no flip.
        assert!(!status.update_estimate(1500, &cfg));
        assert!(!status.update_estimate(700, &cfg));
        assert_eq!(status.is_landmark(), before);
        assert_eq!(status.n_at_last_decision(), 1000);
        // A 2x change triggers a re-decision (flip or not).
        let _ = status.update_estimate(2000, &cfg);
        assert_eq!(status.n_at_last_decision(), 2000);
    }

    #[test]
    fn estimate_errors_change_selection_only_mildly() {
        // With a 40% error in n the landmark set should still have a similar
        // size (the probability changes by ~sqrt(1/1.4) ≈ 0.85).
        let cfg = DiscoConfig::seeded(13);
        let exact = select_landmarks(4096, &cfg).len() as f64;
        let noisy = select_landmarks_with_estimates(4096, &cfg, |v| {
            if v.0 % 2 == 0 {
                (4096.0 * 1.4) as usize
            } else {
                (4096.0 * 0.6) as usize
            }
        })
        .len() as f64;
        assert!(
            (noisy / exact) > 0.5 && (noisy / exact) < 2.0,
            "noisy {noisy} exact {exact}"
        );
    }
}
