//! Shard-crossing wire forms of the protocol messages.
//!
//! [`InternedPath`] handles are pinned to the thread-local path arena that
//! created them (they are `!Send`), so a message crossing a shard boundary
//! must shed its interned paths first. The wire forms here detach every
//! path into an owned `Vec<NodeId>`; the receiving shard re-interns the
//! node sequence into *its own* arena on ingestion. The round trip is
//! semantically lossless — node sequences, and therefore routing decisions
//! and accounted byte sizes, are identical on both sides — which is
//! exactly the `from_wire(to_wire(m)) ≡ m` contract
//! [`ShardProtocol`] requires for sharded determinism.
//!
//! Detaching costs one `Vec` per interned path per shard crossing; local
//! deliveries keep the zero-copy interned form. That matches the real
//! system's cost model, where a message leaving the process must be
//! serialized anyway.

use crate::estimate_n::{GossipEstimator, GossipMsg};
use crate::hash::NameHash;
use crate::path_vector::{Announcement, PathVectorNode};
use crate::protocol::{DiscoMsg, DiscoProtocol, LookupKind, Payload, WireAddress};
use disco_graph::{InternedPath, NodeId, Weight};
use disco_sim::ShardProtocol;

/// [`Announcement`] with its path detached from the arena.
#[derive(Debug, Clone)]
pub struct WireAnnouncement {
    dest: NodeId,
    dist: Weight,
    path: Vec<NodeId>,
    dest_is_landmark: bool,
    dest_landmark_dist: Weight,
    withdrawn: bool,
    refresh: bool,
}

impl WireAnnouncement {
    fn detach(ann: Announcement) -> Self {
        WireAnnouncement {
            dest: ann.dest,
            dist: ann.dist,
            path: ann.path.to_vec(),
            dest_is_landmark: ann.dest_is_landmark,
            dest_landmark_dist: ann.dest_landmark_dist,
            withdrawn: ann.withdrawn,
            refresh: ann.refresh,
        }
    }

    fn attach(self) -> Announcement {
        Announcement {
            dest: self.dest,
            dist: self.dist,
            path: InternedPath::from_slice(&self.path),
            dest_is_landmark: self.dest_is_landmark,
            dest_landmark_dist: self.dest_landmark_dist,
            withdrawn: self.withdrawn,
            refresh: self.refresh,
        }
    }
}

/// [`WireAddress`] with its landmark-to-node path detached.
#[derive(Debug, Clone)]
pub struct DetachedAddress {
    node: NodeId,
    landmark: NodeId,
    path: Vec<NodeId>,
}

impl DetachedAddress {
    fn detach(addr: WireAddress) -> Self {
        DetachedAddress {
            node: addr.node,
            landmark: addr.landmark,
            path: addr.path.to_vec(),
        }
    }

    fn attach(self) -> WireAddress {
        WireAddress {
            node: self.node,
            landmark: self.landmark,
            path: InternedPath::from_slice(&self.path),
        }
    }
}

/// [`Payload`] with every embedded path detached.
#[derive(Debug, Clone)]
pub enum WirePayload {
    /// Detached [`Payload::ResolutionInsert`].
    ResolutionInsert {
        hash: NameHash,
        address: DetachedAddress,
    },
    /// Detached [`Payload::OverlayLookup`].
    OverlayLookup {
        target: NameHash,
        kind: LookupKind,
        exclude: NodeId,
        reply_route: Vec<NodeId>,
        slot: usize,
    },
    /// Detached [`Payload::OverlayReply`].
    OverlayReply {
        slot: usize,
        hash: NameHash,
        address: DetachedAddress,
    },
    /// Detached [`Payload::GroupAnnouncement`].
    GroupAnnouncement {
        origin_hash: NameHash,
        address: DetachedAddress,
        up: Option<bool>,
    },
}

impl WirePayload {
    fn detach(p: Payload) -> Self {
        match p {
            Payload::ResolutionInsert { hash, address } => WirePayload::ResolutionInsert {
                hash,
                address: DetachedAddress::detach(address),
            },
            Payload::OverlayLookup {
                target,
                kind,
                exclude,
                reply_route,
                slot,
            } => WirePayload::OverlayLookup {
                target,
                kind,
                exclude,
                reply_route: reply_route.to_vec(),
                slot,
            },
            Payload::OverlayReply {
                slot,
                hash,
                address,
            } => WirePayload::OverlayReply {
                slot,
                hash,
                address: DetachedAddress::detach(address),
            },
            Payload::GroupAnnouncement {
                origin_hash,
                address,
                up,
            } => WirePayload::GroupAnnouncement {
                origin_hash,
                address: DetachedAddress::detach(address),
                up,
            },
        }
    }

    fn attach(self) -> Payload {
        match self {
            WirePayload::ResolutionInsert { hash, address } => Payload::ResolutionInsert {
                hash,
                address: address.attach(),
            },
            WirePayload::OverlayLookup {
                target,
                kind,
                exclude,
                reply_route,
                slot,
            } => Payload::OverlayLookup {
                target,
                kind,
                exclude,
                reply_route: InternedPath::from_slice(&reply_route),
                slot,
            },
            WirePayload::OverlayReply {
                slot,
                hash,
                address,
            } => Payload::OverlayReply {
                slot,
                hash,
                address: address.attach(),
            },
            WirePayload::GroupAnnouncement {
                origin_hash,
                address,
                up,
            } => Payload::GroupAnnouncement {
                origin_hash,
                address: address.attach(),
                up,
            },
        }
    }
}

/// [`DiscoMsg`] in shard-crossing form.
#[derive(Debug, Clone)]
pub enum WireDiscoMsg {
    /// Detached [`DiscoMsg::Route`].
    Route(WireAnnouncement),
    /// Detached [`DiscoMsg::Forward`].
    Forward {
        route: Vec<NodeId>,
        payload: WirePayload,
    },
    /// [`DiscoMsg::Gossip`] — the synopsis is plain owned data and crosses
    /// shards unchanged.
    Gossip(crate::estimate_n::Synopsis),
}

impl ShardProtocol for PathVectorNode {
    type Wire = WireAnnouncement;

    fn to_wire(msg: Announcement) -> WireAnnouncement {
        WireAnnouncement::detach(msg)
    }

    fn from_wire(wire: WireAnnouncement) -> Announcement {
        wire.attach()
    }
}

impl ShardProtocol for DiscoProtocol {
    type Wire = WireDiscoMsg;

    fn to_wire(msg: DiscoMsg) -> WireDiscoMsg {
        match msg {
            DiscoMsg::Route(ann) => WireDiscoMsg::Route(WireAnnouncement::detach(ann)),
            DiscoMsg::Forward { route, payload } => WireDiscoMsg::Forward {
                route: route.to_vec(),
                payload: WirePayload::detach(payload),
            },
            DiscoMsg::Gossip(s) => WireDiscoMsg::Gossip(s),
        }
    }

    fn from_wire(wire: WireDiscoMsg) -> DiscoMsg {
        match wire {
            WireDiscoMsg::Route(ann) => DiscoMsg::Route(ann.attach()),
            WireDiscoMsg::Forward { route, payload } => DiscoMsg::Forward {
                route: InternedPath::from_slice(&route),
                payload: payload.attach(),
            },
            WireDiscoMsg::Gossip(s) => DiscoMsg::Gossip(s),
        }
    }
}

impl ShardProtocol for GossipEstimator {
    type Wire = GossipMsg;

    fn to_wire(msg: GossipMsg) -> GossipMsg {
        msg
    }

    fn from_wire(wire: GossipMsg) -> GossipMsg {
        wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[usize]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn announcement_round_trips() {
        let ann = Announcement {
            dest: NodeId(7),
            dist: 3.5,
            path: InternedPath::from_slice(&ids(&[2, 4, 7])),
            dest_is_landmark: true,
            dest_landmark_dist: 0.0,
            withdrawn: false,
            refresh: true,
        };
        let back = PathVectorNode::from_wire(PathVectorNode::to_wire(ann.clone()));
        assert_eq!(back.dest, ann.dest);
        assert_eq!(back.dist, ann.dist);
        assert_eq!(back.path.to_vec(), ann.path.to_vec());
        assert_eq!(back.dest_is_landmark, ann.dest_is_landmark);
        assert_eq!(back.withdrawn, ann.withdrawn);
        assert_eq!(back.refresh, ann.refresh);
    }

    #[test]
    fn forward_payload_round_trips() {
        let msg = DiscoMsg::Forward {
            route: InternedPath::from_slice(&ids(&[3, 1])),
            payload: Payload::OverlayLookup {
                target: NameHash(0xfeed),
                kind: LookupKind::Closest,
                exclude: NodeId(2),
                reply_route: InternedPath::from_slice(&ids(&[1, 3])),
                slot: 4,
            },
        };
        let back = DiscoProtocol::from_wire(DiscoProtocol::to_wire(msg));
        let DiscoMsg::Forward { route, payload } = back else {
            panic!("variant changed in flight");
        };
        assert_eq!(route.to_vec(), ids(&[3, 1]));
        let Payload::OverlayLookup {
            target,
            kind,
            exclude,
            reply_route,
            slot,
        } = payload
        else {
            panic!("payload variant changed in flight");
        };
        assert_eq!(target, NameHash(0xfeed));
        assert_eq!(kind, LookupKind::Closest);
        assert_eq!(exclude, NodeId(2));
        assert_eq!(reply_route.to_vec(), ids(&[1, 3]));
        assert_eq!(slot, 4);
    }

    #[test]
    fn resolution_insert_round_trips() {
        let msg = DiscoMsg::Forward {
            route: InternedPath::single(NodeId(0)),
            payload: Payload::ResolutionInsert {
                hash: NameHash(42),
                address: WireAddress {
                    node: NodeId(9),
                    landmark: NodeId(1),
                    path: InternedPath::from_slice(&ids(&[1, 5, 9])),
                },
            },
        };
        let back = DiscoProtocol::from_wire(DiscoProtocol::to_wire(msg));
        let DiscoMsg::Forward {
            payload: Payload::ResolutionInsert { hash, address },
            ..
        } = back
        else {
            panic!("variant changed in flight");
        };
        assert_eq!(hash, NameHash(42));
        assert_eq!(address.node, NodeId(9));
        assert_eq!(address.landmark, NodeId(1));
        assert_eq!(address.path.to_vec(), ids(&[1, 5, 9]));
    }
}
