//! Flat, location-independent names (paper §2, §4.1).
//!
//! A flat name is an arbitrary bit string that serves the needs of the
//! application layer: a DNS name, a MAC address, or a *self-certifying*
//! identifier (the hash of a public key). The routing protocol never
//! interprets a name — it only hashes it (see [`crate::hash`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An arbitrary, location-independent node name.
///
/// Names are plain byte strings. Equality and hashing are byte-wise; two
/// nodes must not share a name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlatName(Vec<u8>);

impl FlatName {
    /// A name from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        FlatName(bytes.into())
    }

    /// A name from a UTF-8 string such as a DNS name (`"host.example.org"`)
    /// or a MAC address in text form.
    pub fn from_str_name(s: &str) -> Self {
        FlatName(s.as_bytes().to_vec())
    }

    /// A *self-certifying* name: the 20-byte digest of a public key, so the
    /// name itself proves ownership of the key without a PKI (paper §2).
    /// The digest here is the crate's internal mixer applied in
    /// sponge-fashion; it is not cryptographically strong, but the routing
    /// layer only requires uniformity (see DESIGN.md §3 on the SHA-2
    /// substitution).
    pub fn self_certifying(public_key: &[u8]) -> Self {
        let mut digest = Vec::with_capacity(20);
        let mut acc: u64 = 0x6a09e667f3bcc908;
        for (i, chunk) in public_key.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = crate::hash::mix64(acc ^ u64::from_le_bytes(word) ^ (i as u64));
        }
        for round in 0u64..3 {
            acc = crate::hash::mix64(acc.wrapping_add(round));
            digest.extend_from_slice(&acc.to_be_bytes());
        }
        digest.truncate(20);
        FlatName(digest)
    }

    /// A deterministic synthetic name for simulation node `index`; used by
    /// the simulators to give every graph node a distinct flat name that has
    /// no relationship with its location.
    pub fn synthetic(index: usize) -> Self {
        FlatName(format!("node-{index:08x}").into_bytes())
    }

    /// The raw bytes of the name.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the name in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the name is empty (permitted, but discouraged).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for FlatName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| c.is_ascii_graphic()) => write!(f, "FlatName({s})"),
            _ => {
                write!(f, "FlatName(0x")?;
                for b in &self.0 {
                    write!(f, "{b:02x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for FlatName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| c.is_ascii_graphic()) => write!(f, "{s}"),
            _ => {
                for b in &self.0 {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl From<&str> for FlatName {
    fn from(s: &str) -> Self {
        FlatName::from_str_name(s)
    }
}

impl From<Vec<u8>> for FlatName {
    fn from(v: Vec<u8>) -> Self {
        FlatName(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compare_bytewise() {
        assert_eq!(
            FlatName::from("alice"),
            FlatName::from_bytes(b"alice".to_vec())
        );
        assert_ne!(FlatName::from("alice"), FlatName::from("bob"));
    }

    #[test]
    fn synthetic_names_distinct() {
        let a = FlatName::synthetic(1);
        let b = FlatName::synthetic(2);
        assert_ne!(a, b);
        assert_eq!(a, FlatName::synthetic(1));
    }

    #[test]
    fn self_certifying_is_deterministic_and_key_dependent() {
        let k1 = vec![1u8; 32];
        let k2 = vec![2u8; 32];
        let n1 = FlatName::self_certifying(&k1);
        let n1b = FlatName::self_certifying(&k1);
        let n2 = FlatName::self_certifying(&k2);
        assert_eq!(n1, n1b);
        assert_ne!(n1, n2);
        assert_eq!(n1.len(), 20);
    }

    #[test]
    fn display_and_debug_of_text_and_binary() {
        let t = FlatName::from("host.example.org");
        assert_eq!(t.to_string(), "host.example.org");
        assert!(format!("{t:?}").contains("host.example.org"));
        let b = FlatName::from_bytes(vec![0u8, 255u8]);
        assert_eq!(b.to_string(), "00ff");
    }

    #[test]
    fn emptiness_and_len() {
        assert!(FlatName::from_bytes(Vec::new()).is_empty());
        assert_eq!(FlatName::from("ab").len(), 2);
    }
}
