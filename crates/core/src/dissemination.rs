//! Address dissemination over the overlay (paper §4.4, "Sloppy group
//! maintenance").
//!
//! Each node must ensure that every member of its sloppy group stores its
//! address, without knowing who those members are. Disco floods the
//! address announcement over the overlay with a protocol "very close to a
//! distance vector (DV) routing protocol", with four differences:
//!
//! 1. it only propagates address information (it never computes routes),
//! 2. announcements carry no distance, only the originator's name+address,
//! 3. nodes propagate announcements only to/from overlay neighbors they
//!    believe are in their own group, and
//! 4. **directionality**: an announcement received from a neighbor with a
//!    higher hash value is forwarded only to neighbors with lower hash
//!    values, and vice-versa, so the hash-space distance from the origin
//!    strictly increases and the count-to-infinity problem disappears.
//!
//! This module simulates the converged behaviour of that protocol on a
//! built [`crate::overlay::Overlay`]: which nodes receive a given node's
//! announcement, in how many overlay hops, and at the cost of how many
//! overlay messages. The distributed, event-driven form lives in
//! [`crate::protocol`].

use crate::overlay::Overlay;
use crate::sloppy_group::SloppyGrouping;
use disco_graph::NodeId;
use std::collections::{HashMap, VecDeque};

/// Outcome of disseminating one node's address announcement.
#[derive(Debug, Clone)]
pub struct DisseminationOutcome {
    /// The originating node.
    pub origin: NodeId,
    /// Overlay-hop distance at which each reached node first received the
    /// announcement (the origin itself is not included).
    pub hops: HashMap<NodeId, u32>,
    /// Total overlay messages sent while flooding this announcement.
    pub messages: u64,
}

impl DisseminationOutcome {
    /// Nodes that received the announcement.
    pub fn reached(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.hops.keys().copied()
    }

    /// Number of nodes reached.
    pub fn reached_count(&self) -> usize {
        self.hops.len()
    }

    /// Mean overlay hop count over reached nodes.
    pub fn mean_hops(&self) -> f64 {
        if self.hops.is_empty() {
            0.0
        } else {
            self.hops.values().map(|&h| h as f64).sum::<f64>() / self.hops.len() as f64
        }
    }

    /// Maximum overlay hop count over reached nodes.
    pub fn max_hops(&self) -> u32 {
        self.hops.values().copied().max().unwrap_or(0)
    }
}

/// Direction of travel in hash space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Direction {
    /// Toward higher hash values.
    Up,
    /// Toward lower hash values.
    Down,
}

/// Simulate the converged dissemination of `origin`'s announcement.
///
/// Every forwarding step obeys the three propagation rules above: only to
/// overlay neighbors the forwarder considers members of its own group, and
/// only in the announcement's direction of travel. The origin itself sends
/// in both directions.
pub fn disseminate(
    overlay: &Overlay,
    grouping: &SloppyGrouping,
    origin: NodeId,
) -> DisseminationOutcome {
    let mut hops: HashMap<NodeId, u32> = HashMap::new();
    let mut messages: u64 = 0;
    // A node forwards at most once per direction; track which directions it
    // has already forwarded in.
    let mut forwarded: HashMap<(NodeId, Direction), bool> = HashMap::new();
    let mut queue: VecDeque<(NodeId, Option<Direction>, u32)> = VecDeque::new();
    queue.push_back((origin, None, 0));

    while let Some((at, dir, hop)) = queue.pop_front() {
        // Decide in which directions `at` forwards.
        let directions: &[Direction] = match dir {
            None => &[Direction::Up, Direction::Down],
            Some(Direction::Up) => &[Direction::Up],
            Some(Direction::Down) => &[Direction::Down],
        };
        for &d in directions {
            if forwarded.insert((at, d), true).is_some() {
                continue; // already forwarded in this direction
            }
            let h_at = grouping.hash_of(at).value();
            for &nb in overlay.neighbors(at) {
                // Rule 3: keep the announcement inside the group as `at`
                // perceives it.
                if !grouping.considers_member(at, nb) || !grouping.considers_member(at, origin) {
                    continue;
                }
                let h_nb = grouping.hash_of(nb).value();
                let matches_direction = match d {
                    Direction::Up => h_nb > h_at,
                    Direction::Down => h_nb < h_at,
                };
                if !matches_direction {
                    continue;
                }
                messages += 1;
                let entry = hops.entry(nb).or_insert(hop + 1);
                if *entry > hop + 1 {
                    *entry = hop + 1;
                }
                // The receiver continues in the same direction.
                queue.push_back((nb, Some(d), hop + 1));
            }
        }
    }
    hops.remove(&origin);
    DisseminationOutcome {
        origin,
        hops,
        messages,
    }
}

/// Aggregate dissemination statistics over a set of origins.
#[derive(Debug, Clone, Default)]
pub struct DisseminationStats {
    /// Mean over origins of the mean overlay hops to reach a group member.
    pub mean_hops: f64,
    /// Maximum overlay hops observed over all origins and receivers.
    pub max_hops: u32,
    /// Mean overlay messages per announcement.
    pub mean_messages: f64,
    /// Fraction of (origin, core-group member) pairs that were actually
    /// reached — should be 1.0.
    pub coverage: f64,
}

/// Disseminate from every node in `origins` and aggregate the statistics,
/// checking coverage of each origin's core group.
pub fn disseminate_many(
    overlay: &Overlay,
    grouping: &SloppyGrouping,
    origins: &[NodeId],
) -> DisseminationStats {
    let mut sum_mean_hops = 0.0;
    let mut max_hops = 0;
    let mut sum_messages = 0.0;
    let mut covered = 0usize;
    let mut required = 0usize;
    for &o in origins {
        let out = disseminate(overlay, grouping, o);
        sum_mean_hops += out.mean_hops();
        max_hops = max_hops.max(out.max_hops());
        sum_messages += out.messages as f64;
        for &m in grouping.core_group(o) {
            if m == o {
                continue;
            }
            required += 1;
            if out.hops.contains_key(&m) {
                covered += 1;
            }
        }
    }
    let k = origins.len().max(1) as f64;
    DisseminationStats {
        mean_hops: sum_mean_hops / k,
        max_hops,
        mean_messages: sum_messages / k,
        coverage: if required == 0 {
            1.0
        } else {
            covered as f64 / required as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoConfig;
    use crate::name::FlatName;

    fn setup(n: usize, fingers: usize, seed: u64) -> (Overlay, SloppyGrouping) {
        let names: Vec<FlatName> = (0..n).map(FlatName::synthetic).collect();
        let cfg = DiscoConfig::seeded(seed).with_fingers(fingers);
        let grouping = SloppyGrouping::build(n, &cfg, &names, |_| n);
        let overlay = Overlay::build(&grouping, &cfg);
        (overlay, grouping)
    }

    #[test]
    fn announcement_reaches_entire_core_group() {
        let (overlay, grouping) = setup(1024, 1, 3);
        for origin in [0usize, 17, 500, 1023] {
            let out = disseminate(&overlay, &grouping, NodeId(origin));
            for &m in grouping.core_group(NodeId(origin)) {
                if m != NodeId(origin) {
                    assert!(
                        out.hops.contains_key(&m),
                        "member {m} missed announcement from {origin}"
                    );
                }
            }
        }
    }

    #[test]
    fn announcement_stays_inside_the_group() {
        let (overlay, grouping) = setup(1024, 3, 5);
        let origin = NodeId(42);
        let out = disseminate(&overlay, &grouping, origin);
        for node in out.reached() {
            assert!(
                grouping.considers_member(node, origin) || grouping.considers_member(origin, node),
                "{node} received an announcement from a foreign group"
            );
        }
    }

    #[test]
    fn more_fingers_reduce_hop_count() {
        let n = 2048;
        let (ov1, gr1) = setup(n, 1, 7);
        let (ov3, gr3) = setup(n, 3, 7);
        let origins: Vec<NodeId> = (0..n).step_by(64).map(NodeId).collect();
        let s1 = disseminate_many(&ov1, &gr1, &origins);
        let s3 = disseminate_many(&ov3, &gr3, &origins);
        assert!(s1.coverage > 0.999, "coverage {}", s1.coverage);
        assert!(s3.coverage > 0.999, "coverage {}", s3.coverage);
        assert!(
            s3.mean_hops < s1.mean_hops,
            "3 fingers ({}) should beat 1 finger ({})",
            s3.mean_hops,
            s1.mean_hops
        );
        // Paper (1024-node G(n,m)): 1 finger → mean ≈ 5.8 hops; 3 fingers →
        // ≈ 3.0. Allow a generous band since our n and hash differ.
        assert!(s1.mean_hops > 2.0 && s1.mean_hops < 12.0);
        assert!(s3.mean_hops > 1.0 && s3.mean_hops < 8.0);
    }

    #[test]
    fn message_count_is_linear_in_group_size() {
        let (overlay, grouping) = setup(1024, 1, 9);
        let origin = NodeId(100);
        let out = disseminate(&overlay, &grouping, origin);
        let group = grouping.core_group(origin).len() as u64;
        // Constant average overlay degree ⇒ a few messages per member.
        assert!(out.messages >= group - 1);
        assert!(
            out.messages < group * 6,
            "messages {} for group of {group}",
            out.messages
        );
    }

    #[test]
    fn hop_distances_increase_from_origin() {
        let (overlay, grouping) = setup(512, 1, 11);
        let origin = NodeId(5);
        let out = disseminate(&overlay, &grouping, origin);
        assert!(out.hops.values().all(|&h| h >= 1));
        assert!(out.mean_hops() >= 1.0);
        assert!(out.max_hops() >= out.mean_hops() as u32);
    }
}
