//! Hashing of flat names into the identifier ring (paper §4.4).
//!
//! The paper uses a "well-known hash function h(v) (e.g., SHA-2)" that maps
//! a node name to a roughly uniformly-distributed string of `Θ(log n)`
//! bits. The routing layer only needs uniformity and determinism, so this
//! reproduction uses a 64-bit splitmix-style mixer over the name bytes (see
//! DESIGN.md §3 for the substitution note). Sixty-four bits are plenty: the
//! paper's constructions use the first `k ≈ log2(√n / log n)` bits for
//! sloppy grouping and the full value for ring ordering, and collisions at
//! `n ≤ 2^32` are negligible.
//!
//! Everything downstream of this module — sloppy groups, the Symphony
//! overlay, consistent hashing — treats [`NameHash`] values as positions on
//! a circular 64-bit identifier space.

use crate::name::FlatName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One round of a 64-bit finalizer (splitmix64's output function).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A position on the 64-bit circular identifier space, `h(name)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NameHash(pub u64);

impl NameHash {
    /// The raw 64-bit value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The first `k` bits (most significant), i.e. the sloppy-group prefix.
    #[inline]
    pub fn prefix(self, k: u32) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            self.0
        } else {
            self.0 >> (64 - k)
        }
    }

    /// Length of the common most-significant-bit prefix with `other`
    /// (0..=64). This is the "longest prefix match between h(w) and h(t)"
    /// used when a source looks for a vicinity member of the destination's
    /// sloppy group.
    #[inline]
    pub fn common_prefix_len(self, other: NameHash) -> u32 {
        (self.0 ^ other.0).leading_zeros()
    }

    /// Distance from `self` to `other` walking clockwise (increasing ids,
    /// wrapping at 2^64).
    #[inline]
    pub fn clockwise_distance(self, other: NameHash) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Circular distance (minimum of clockwise and counter-clockwise).
    #[inline]
    pub fn ring_distance(self, other: NameHash) -> u64 {
        let cw = self.clockwise_distance(other);
        cw.min(cw.wrapping_neg())
    }

    /// Whether `self` lies in the half-open clockwise arc `(from, to]`.
    /// Used for successor/ownership computations (consistent hashing,
    /// Symphony ring maintenance).
    pub fn in_arc(self, from: NameHash, to: NameHash) -> bool {
        if from == to {
            // Full circle.
            return true;
        }
        from.clockwise_distance(self) != 0
            && from.clockwise_distance(self) <= from.clockwise_distance(to)
    }
}

impl fmt::Debug for NameHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NameHash({:016x})", self.0)
    }
}

impl fmt::Display for NameHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The globally agreed hash function `h(·)`, parameterised by a salt so
/// tests and multi-hash consistent hashing can derive independent functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameHasher {
    salt: u64,
}

impl Default for NameHasher {
    fn default() -> Self {
        NameHasher::new(0)
    }
}

impl NameHasher {
    /// A hasher with the given salt. All nodes must agree on the salt; the
    /// simulators derive it from the experiment seed.
    pub fn new(salt: u64) -> Self {
        NameHasher {
            salt: mix64(salt ^ 0x5851f42d4c957f2d),
        }
    }

    /// Hash a flat name to its ring position.
    pub fn hash_name(&self, name: &FlatName) -> NameHash {
        self.hash_bytes(name.as_bytes())
    }

    /// Hash arbitrary bytes to a ring position.
    pub fn hash_bytes(&self, bytes: &[u8]) -> NameHash {
        let mut acc = self.salt ^ (bytes.len() as u64).wrapping_mul(0xff51afd7ed558ccd);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = mix64(acc ^ u64::from_le_bytes(word));
        }
        NameHash(mix64(acc))
    }

    /// Hash a 64-bit key (used by consistent hashing's virtual points).
    pub fn hash_u64(&self, key: u64) -> NameHash {
        NameHash(mix64(self.salt ^ mix64(key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> NameHasher {
        NameHasher::new(42)
    }

    #[test]
    fn hashing_deterministic_and_salt_dependent() {
        let n = FlatName::from("alice");
        assert_eq!(h().hash_name(&n), h().hash_name(&n));
        assert_ne!(
            NameHasher::new(1).hash_name(&n),
            NameHasher::new(2).hash_name(&n)
        );
    }

    #[test]
    fn different_names_hash_differently() {
        let a = h().hash_name(&FlatName::from("alice"));
        let b = h().hash_name(&FlatName::from("bob"));
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_extraction() {
        let x = NameHash(0xF000_0000_0000_0000);
        assert_eq!(x.prefix(4), 0xF);
        assert_eq!(x.prefix(0), 0);
        assert_eq!(x.prefix(64), x.0);
        assert_eq!(x.prefix(80), x.0);
    }

    #[test]
    fn common_prefix_len() {
        let a = NameHash(0b1010 << 60);
        let b = NameHash(0b1011 << 60);
        assert_eq!(a.common_prefix_len(b), 3);
        assert_eq!(a.common_prefix_len(a), 64);
    }

    #[test]
    fn ring_distances() {
        let a = NameHash(10);
        let b = NameHash(20);
        assert_eq!(a.clockwise_distance(b), 10);
        assert_eq!(b.clockwise_distance(a), u64::MAX - 9);
        assert_eq!(a.ring_distance(b), 10);
        assert_eq!(b.ring_distance(a), 10);
        // Antipodal distance.
        let c = NameHash(10u64.wrapping_add(u64::MAX / 2 + 1));
        assert_eq!(a.ring_distance(c), u64::MAX / 2 + 1);
    }

    #[test]
    fn arcs() {
        let a = NameHash(100);
        let b = NameHash(200);
        assert!(NameHash(150).in_arc(a, b));
        assert!(NameHash(200).in_arc(a, b));
        assert!(!NameHash(100).in_arc(a, b));
        assert!(!NameHash(250).in_arc(a, b));
        // Wrapping arc.
        assert!(NameHash(50).in_arc(b, a));
        assert!(!NameHash(150).in_arc(b, a));
        // Degenerate full-circle arc.
        assert!(NameHash(7).in_arc(a, a));
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        // Bucket 4096 synthetic names into 16 buckets by top 4 bits; each
        // bucket should get 256 ± a generous tolerance.
        let hasher = h();
        let mut buckets = [0usize; 16];
        for i in 0..4096 {
            let v = hasher.hash_name(&FlatName::synthetic(i));
            buckets[v.prefix(4) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!(
                c > 150 && c < 400,
                "bucket {i} badly unbalanced with {c} entries"
            );
        }
    }
}
