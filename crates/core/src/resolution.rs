//! Name resolution over the landmarks (paper §4.3).
//!
//! A consistent-hashing database runs over the globally-known set of
//! landmarks and maps `flat name → address`. Every node inserts its own
//! address under the key `h(name)`; any node can query the database to
//! bootstrap communication (and Disco also uses it to look up overlay
//! finger candidates). The state is *soft*: entries are re-inserted every
//! `t` minutes and expire after `2t + 1` minutes (the simulator uses
//! `t = 10` as in the paper).
//!
//! The ring uses multiple hash functions per landmark (virtual points),
//! which reduces consistent hashing's `Θ(log n)` load imbalance and keeps
//! the per-landmark share of the database at `O~(√n)` entries (Theorem 2).

use crate::address::Address;
use crate::config::DiscoConfig;
use crate::hash::{NameHash, NameHasher};
use crate::name::FlatName;
use disco_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Soft-state timing parameters (in minutes, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftStateTimers {
    /// Re-insertion period `t`.
    pub refresh_minutes: f64,
    /// Expiry `2t + 1`.
    pub expiry_minutes: f64,
}

impl Default for SoftStateTimers {
    fn default() -> Self {
        SoftStateTimers::with_refresh(10.0)
    }
}

impl SoftStateTimers {
    /// Timers for a refresh period of `t` minutes (expiry `2t + 1`).
    pub fn with_refresh(t: f64) -> Self {
        SoftStateTimers {
            refresh_minutes: t,
            expiry_minutes: 2.0 * t + 1.0,
        }
    }
}

/// The consistent-hashing ring over the landmark set.
#[derive(Debug, Clone)]
pub struct ResolutionRing {
    /// Virtual points sorted by ring position: (position, landmark).
    points: Vec<(NameHash, NodeId)>,
    hasher: NameHasher,
}

impl ResolutionRing {
    /// Build the ring for the given landmark set with
    /// `cfg.resolution_hash_functions` virtual points per landmark.
    pub fn new(landmarks: &[NodeId], cfg: &DiscoConfig) -> Self {
        assert!(!landmarks.is_empty(), "resolution ring needs ≥1 landmark");
        let hasher = NameHasher::new(cfg.seed ^ 0xca11);
        let mut points = Vec::with_capacity(landmarks.len() * cfg.resolution_hash_functions.max(1));
        for &lm in landmarks {
            for vp in 0..cfg.resolution_hash_functions.max(1) {
                let pos = hasher.hash_u64(((vp as u64) << 48) ^ lm.0 as u64);
                points.push((pos, lm));
            }
        }
        points.sort();
        points.dedup_by_key(|p| p.0);
        ResolutionRing { points, hasher }
    }

    /// The hash function used to map keys onto the ring.
    pub fn hasher(&self) -> &NameHasher {
        &self.hasher
    }

    /// The landmark responsible for a ring position: the first virtual point
    /// clockwise from `key`.
    pub fn owner_of_hash(&self, key: NameHash) -> NodeId {
        match self.points.binary_search_by(|p| p.0.cmp(&key)) {
            Ok(i) => self.points[i].1,
            Err(i) => self.points[i % self.points.len()].1,
        }
    }

    /// The landmark responsible for a flat name.
    pub fn owner_of_name(&self, name: &FlatName) -> NodeId {
        self.owner_of_hash(self.hasher.hash_name(name))
    }

    /// Number of virtual points on the ring.
    pub fn virtual_point_count(&self) -> usize {
        self.points.len()
    }
}

/// The (simulated, centralized view of the) name-resolution database: which
/// landmark stores which `name → address` entries.
#[derive(Debug, Clone, Default)]
pub struct ResolutionDatabase {
    /// Entries stored at each landmark.
    per_landmark: HashMap<NodeId, HashMap<FlatName, Address>>,
}

impl ResolutionDatabase {
    /// Build the converged database: every node's address inserted at its
    /// owner landmark.
    pub fn build(ring: &ResolutionRing, names: &[FlatName], addresses: &[Address]) -> Self {
        assert_eq!(names.len(), addresses.len());
        let mut per_landmark: HashMap<NodeId, HashMap<FlatName, Address>> = HashMap::new();
        for (name, addr) in names.iter().zip(addresses) {
            let owner = ring.owner_of_name(name);
            per_landmark
                .entry(owner)
                .or_default()
                .insert(name.clone(), addr.clone());
        }
        ResolutionDatabase { per_landmark }
    }

    /// Resolve a name (as if querying the owner landmark).
    pub fn resolve(&self, ring: &ResolutionRing, name: &FlatName) -> Option<&Address> {
        let owner = ring.owner_of_name(name);
        self.per_landmark.get(&owner)?.get(name)
    }

    /// Number of entries stored at landmark `lm` — the quantity that enters
    /// the per-landmark state accounting of Theorem 2.
    pub fn entries_at(&self, lm: NodeId) -> usize {
        self.per_landmark.get(&lm).map(|m| m.len()).unwrap_or(0)
    }

    /// Total number of entries (equals the number of nodes).
    pub fn total_entries(&self) -> usize {
        self.per_landmark.values().map(|m| m.len()).sum()
    }

    /// Largest number of entries at any landmark.
    pub fn max_entries(&self) -> usize {
        self.per_landmark
            .values()
            .map(|m| m.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmark::select_landmarks;
    use disco_graph::Path;

    fn dummy_addresses(n: usize, landmarks: &[NodeId]) -> (Vec<FlatName>, Vec<Address>) {
        let names: Vec<FlatName> = (0..n).map(FlatName::synthetic).collect();
        let addrs: Vec<Address> = (0..n)
            .map(|i| Address {
                node: NodeId(i),
                landmark: landmarks[i % landmarks.len()],
                landmark_distance: 1.0,
                route: crate::label::ExplicitRoute::empty(landmarks[i % landmarks.len()]),
            })
            .collect();
        (names, addrs)
    }

    #[test]
    fn soft_state_timers_follow_paper_rule() {
        let t = SoftStateTimers::default();
        assert!((t.refresh_minutes - 10.0).abs() < 1e-12);
        assert!((t.expiry_minutes - 21.0).abs() < 1e-12);
        let t5 = SoftStateTimers::with_refresh(5.0);
        assert!((t5.expiry_minutes - 11.0).abs() < 1e-12);
    }

    #[test]
    fn ring_owner_is_deterministic_and_consistent() {
        let cfg = DiscoConfig::seeded(2);
        let landmarks = select_landmarks(1024, &cfg);
        let ring = ResolutionRing::new(&landmarks, &cfg);
        let name = FlatName::from("some-host");
        assert_eq!(ring.owner_of_name(&name), ring.owner_of_name(&name));
        assert!(landmarks.contains(&ring.owner_of_name(&name)));
        assert_eq!(
            ring.virtual_point_count(),
            landmarks.len() * cfg.resolution_hash_functions
        );
    }

    #[test]
    fn removing_one_landmark_moves_few_keys() {
        // Consistent hashing's defining property.
        let cfg = DiscoConfig::seeded(4);
        let landmarks = select_landmarks(4096, &cfg);
        let ring_full = ResolutionRing::new(&landmarks, &cfg);
        let reduced: Vec<NodeId> = landmarks[1..].to_vec();
        let ring_reduced = ResolutionRing::new(&reduced, &cfg);
        let n_keys = 2000;
        let moved = (0..n_keys)
            .filter(|&i| {
                let name = FlatName::synthetic(i);
                let a = ring_full.owner_of_name(&name);
                let b = ring_reduced.owner_of_name(&name);
                a != b && a != landmarks[0]
            })
            .count();
        // Keys not owned by the removed landmark should essentially never move.
        assert_eq!(moved, 0);
    }

    #[test]
    fn database_stores_and_resolves_every_name() {
        let cfg = DiscoConfig::seeded(6);
        let n = 512;
        let landmarks = select_landmarks(n, &cfg);
        let ring = ResolutionRing::new(&landmarks, &cfg);
        let (names, addrs) = dummy_addresses(n, &landmarks);
        let db = ResolutionDatabase::build(&ring, &names, &addrs);
        assert_eq!(db.total_entries(), n);
        for i in (0..n).step_by(37) {
            let got = db.resolve(&ring, &names[i]).unwrap();
            assert_eq!(got.node, NodeId(i));
        }
        assert!(db.resolve(&ring, &FlatName::from("unknown")).is_none());
    }

    #[test]
    fn load_is_roughly_balanced_with_virtual_points() {
        let cfg = DiscoConfig::seeded(8);
        let n = 4096;
        let landmarks = select_landmarks(n, &cfg);
        let ring = ResolutionRing::new(&landmarks, &cfg);
        let (names, addrs) = dummy_addresses(n, &landmarks);
        let db = ResolutionDatabase::build(&ring, &names, &addrs);
        let fair = n as f64 / landmarks.len() as f64;
        // With 8 virtual points the most loaded landmark should stay within
        // a small factor of fair share (paper: O(√n log n) entries w.h.p.).
        assert!(
            (db.max_entries() as f64) < fair * 8.0,
            "max {} vs fair {fair}",
            db.max_entries()
        );
    }

    #[test]
    fn paths_in_addresses_are_preserved() {
        // Ensure the database stores addresses verbatim (no lossy copies).
        let cfg = DiscoConfig::seeded(1);
        let g = disco_graph::generators::ring(16);
        let landmarks = vec![NodeId(0)];
        let ring = ResolutionRing::new(&landmarks, &cfg);
        let spt = disco_graph::dijkstra(&g, NodeId(0));
        let names: Vec<FlatName> = (0..16).map(FlatName::synthetic).collect();
        let addrs: Vec<Address> = (0..16)
            .map(|i| {
                let p: Path = spt.path_to(NodeId(i)).unwrap();
                Address::from_landmark_path(&g, NodeId(i), &p)
            })
            .collect();
        let db = ResolutionDatabase::build(&ring, &names, &addrs);
        let a = db.resolve(&ring, &names[9]).unwrap();
        assert_eq!(a.route_path(&g).unwrap().destination(), NodeId(9));
    }
}
