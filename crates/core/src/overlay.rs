//! The address-dissemination overlay (paper §4.4).
//!
//! Each node `v` maintains a small set of overlay neighbors `N(v)`:
//!
//! * its **successor** and **predecessor** in the circular ordering of all
//!   nodes by hash value `h(·)` (like a DHT ring), and
//! * a small constant number of long-distance **fingers**, chosen à la
//!   Symphony: a target hash value `a` is drawn from the part of the hash
//!   space covered by `v`'s sloppy group, with probability inversely
//!   proportional to its distance from `h(v)`; the finger is the node whose
//!   hash is closest to `a` (found through the landmark resolution database
//!   in the distributed protocol).
//!
//! Counting incoming and outgoing connections, the average overlay degree is
//! ≈ 4 with one finger and ≈ 8 with three — constant, which is what keeps
//! the per-announcement message cost low.

use crate::config::DiscoConfig;
use crate::sloppy_group::SloppyGrouping;
use disco_graph::NodeId;
use disco_sim::rng::rng_for;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// RNG stream id for finger selection.
const FINGER_STREAM: u64 = 0x22;

/// The overlay links of one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlayLinks {
    /// Next node clockwise on the hash ring.
    pub successor: NodeId,
    /// Previous node clockwise on the hash ring.
    pub predecessor: NodeId,
    /// Outgoing long-distance fingers (within the node's sloppy group).
    pub fingers: Vec<NodeId>,
}

/// The whole overlay network: per-node links plus the undirected adjacency
/// used by the dissemination protocol.
#[derive(Debug, Clone)]
pub struct Overlay {
    links: Vec<OverlayLinks>,
    /// Undirected adjacency: all nodes this node maintains a connection
    /// with, counting both directions (successor/predecessor/fingers in
    /// either direction). Sorted, deduplicated.
    adjacency: Vec<Vec<NodeId>>,
}

impl Overlay {
    /// Build the overlay for the given sloppy grouping with
    /// `cfg.fingers` outgoing fingers per node.
    pub fn build(grouping: &SloppyGrouping, cfg: &DiscoConfig) -> Self {
        let n = grouping_len(grouping);
        assert!(n >= 2, "overlay needs at least 2 nodes");

        // Ring order: nodes sorted by hash value.
        let mut by_hash: Vec<(u64, NodeId)> = (0..n)
            .map(|v| (grouping.hash_of(NodeId(v)).value(), NodeId(v)))
            .collect();
        by_hash.sort();
        let mut ring_pos = vec![0usize; n];
        for (pos, &(_, v)) in by_hash.iter().enumerate() {
            ring_pos[v.0] = pos;
        }

        // Sorted map from hash to node for closest-hash finger lookup.
        let hash_index: BTreeMap<u64, NodeId> = by_hash.iter().copied().collect();

        let mut links = Vec::with_capacity(n);
        for (v, &pos) in ring_pos.iter().enumerate() {
            let successor = by_hash[(pos + 1) % n].1;
            let predecessor = by_hash[(pos + n - 1) % n].1;
            let fingers = select_fingers(NodeId(v), grouping, cfg, &hash_index);
            links.push(OverlayLinks {
                successor,
                predecessor,
                fingers,
            });
        }

        // Undirected adjacency.
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, l) in links.iter().enumerate() {
            let mut add = |a: usize, b: NodeId| {
                if a != b.0 {
                    adjacency[a].push(b);
                    adjacency[b.0].push(NodeId(a));
                }
            };
            add(v, l.successor);
            add(v, l.predecessor);
            for &f in &l.fingers {
                add(v, f);
            }
        }
        for list in &mut adjacency {
            list.sort();
            list.dedup();
        }

        Overlay { links, adjacency }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.links.len()
    }

    /// The directed links of node `v`.
    pub fn links(&self, v: NodeId) -> &OverlayLinks {
        &self.links[v.0]
    }

    /// All overlay neighbors of `v` (connections in either direction).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.0]
    }

    /// Overlay degree of `v` counting connections in both directions —
    /// the paper's `|N(v)| ≈ 4 or 8`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.0].len()
    }

    /// Mean overlay degree.
    pub fn mean_degree(&self) -> f64 {
        let total: usize = (0..self.node_count()).map(|v| self.degree(NodeId(v))).sum();
        total as f64 / self.node_count() as f64
    }

    /// All undirected overlay edges (u < v).
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for v in 0..self.node_count() {
            for &w in &self.adjacency[v] {
                if v < w.0 {
                    out.push((NodeId(v), w));
                }
            }
        }
        out
    }
}

fn grouping_len(grouping: &SloppyGrouping) -> usize {
    // SloppyGrouping does not expose n directly; recover it from the core
    // group partition.
    grouping.core_groups().map(|(_, m)| m.len()).sum()
}

/// Select `cfg.fingers` outgoing fingers for `v`, Symphony-style: target
/// positions drawn within the hash-space arc of `v`'s sloppy group, with
/// density ∝ 1/distance from `h(v)`; the finger is the node whose hash is
/// closest to the target.
fn select_fingers(
    v: NodeId,
    grouping: &SloppyGrouping,
    cfg: &DiscoConfig,
    hash_index: &BTreeMap<u64, NodeId>,
) -> Vec<NodeId> {
    if cfg.fingers == 0 {
        return Vec::new();
    }
    let gid = grouping.group_of(v);
    let bits = gid.bits;
    let arc_size: u128 = if bits == 0 {
        1u128 << 64
    } else {
        1u128 << (64 - bits)
    };
    let arc_lo: u64 = if bits == 0 {
        0
    } else {
        gid.prefix << (64 - bits)
    };
    let h_v = grouping.hash_of(v).value();

    let mut rng = rng_for(cfg.seed, FINGER_STREAM, v.0 as u64);
    let mut fingers = Vec::with_capacity(cfg.fingers);
    let mut attempts = 0;
    while fingers.len() < cfg.fingers && attempts < cfg.fingers * 20 {
        attempts += 1;
        // Log-uniform distance in [1, arc_size): P(d) ∝ 1/d.
        let u: f64 = rng.gen();
        let d = ((arc_size as f64).ln() * u).exp() as u128;
        let d = d.clamp(1, arc_size.saturating_sub(1).max(1));
        let sign_up: bool = rng.gen();
        // Target position, reflected back into the group's arc.
        let offset = (h_v as u128).saturating_sub(arc_lo as u128);
        let new_offset = if sign_up {
            (offset + d) % arc_size
        } else {
            (offset + arc_size - (d % arc_size)) % arc_size
        };
        let target = arc_lo.wrapping_add(new_offset as u64);

        let candidate = closest_by_hash(hash_index, target);
        if candidate != v && !fingers.contains(&candidate) {
            fingers.push(candidate);
        }
    }
    fingers
}

/// The node whose hash value is closest to `target` on the circular 64-bit
/// space.
fn closest_by_hash(hash_index: &BTreeMap<u64, NodeId>, target: u64) -> NodeId {
    let above = hash_index
        .range(target..)
        .next()
        .or_else(|| hash_index.iter().next());
    let below = hash_index
        .range(..=target)
        .next_back()
        .or_else(|| hash_index.iter().next_back());
    match (above, below) {
        (Some((&ha, &na)), Some((&hb, &nb))) => {
            let da = ha.wrapping_sub(target).min(target.wrapping_sub(ha));
            let db = hb.wrapping_sub(target).min(target.wrapping_sub(hb));
            if da <= db {
                na
            } else {
                nb
            }
        }
        (Some((_, &na)), None) => na,
        (None, Some((_, &nb))) => nb,
        (None, None) => unreachable!("hash index is never empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::FlatName;

    fn grouping(n: usize, seed: u64) -> SloppyGrouping {
        let names: Vec<FlatName> = (0..n).map(FlatName::synthetic).collect();
        SloppyGrouping::build(n, &DiscoConfig::seeded(seed), &names, |_| n)
    }

    #[test]
    fn ring_links_form_a_single_cycle() {
        let n = 256;
        let g = grouping(n, 3);
        let overlay = Overlay::build(&g, &DiscoConfig::seeded(3));
        // Follow successors: must visit every node exactly once.
        let mut seen = vec![false; n];
        let mut cur = NodeId(0);
        for _ in 0..n {
            assert!(!seen[cur.0], "ring revisited {cur} early");
            seen[cur.0] = true;
            cur = overlay.links(cur).successor;
        }
        assert_eq!(cur, NodeId(0));
        assert!(seen.iter().all(|&s| s));
        // Successor/predecessor are inverses.
        for v in 0..n {
            let s = overlay.links(NodeId(v)).successor;
            assert_eq!(overlay.links(s).predecessor, NodeId(v));
        }
    }

    #[test]
    fn mean_degree_matches_paper_estimate() {
        let n = 2048;
        let g = grouping(n, 5);
        let one = Overlay::build(&g, &DiscoConfig::seeded(5).with_fingers(1));
        let three = Overlay::build(&g, &DiscoConfig::seeded(5).with_fingers(3));
        // Paper: |N(v)| ≈ 4 (1 finger) or ≈ 8 (3 fingers), counting both
        // directions. Ring links contribute 2, each finger ~2 (out + in).
        assert!(
            (one.mean_degree() - 4.0).abs() < 1.0,
            "1-finger mean degree {}",
            one.mean_degree()
        );
        assert!(
            (three.mean_degree() - 8.0).abs() < 1.6,
            "3-finger mean degree {}",
            three.mean_degree()
        );
    }

    #[test]
    fn fingers_stay_inside_the_nodes_group() {
        let n = 2048;
        let g = grouping(n, 7);
        let overlay = Overlay::build(&g, &DiscoConfig::seeded(7).with_fingers(3));
        let mut outside = 0usize;
        let mut total = 0usize;
        for v in 0..n {
            for &f in &overlay.links(NodeId(v)).fingers {
                total += 1;
                if !g.considers_member(NodeId(v), f) {
                    outside += 1;
                }
            }
        }
        // Targets are drawn inside the group arc; only boundary rounding can
        // land a finger just outside. That should be rare.
        assert!(total > 0);
        assert!(
            (outside as f64) < 0.05 * total as f64,
            "{outside}/{total} fingers outside their group"
        );
    }

    #[test]
    fn adjacency_is_symmetric() {
        let n = 512;
        let g = grouping(n, 9);
        let overlay = Overlay::build(&g, &DiscoConfig::seeded(9).with_fingers(2));
        for v in 0..n {
            for &w in overlay.neighbors(NodeId(v)) {
                assert!(
                    overlay.neighbors(w).contains(&NodeId(v)),
                    "asymmetric adjacency {v} -> {w}"
                );
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let n = 256;
        let g = grouping(n, 11);
        let a = Overlay::build(&g, &DiscoConfig::seeded(11));
        let b = Overlay::build(&g, &DiscoConfig::seeded(11));
        for v in 0..n {
            assert_eq!(a.links(NodeId(v)).fingers, b.links(NodeId(v)).fingers);
        }
    }

    #[test]
    fn edges_are_unique_pairs() {
        let n = 300;
        let g = grouping(n, 13);
        let overlay = Overlay::build(&g, &DiscoConfig::seeded(13));
        let edges = overlay.edges();
        let mut set = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(set.insert((u, v)), "duplicate edge ({u},{v})");
        }
    }
}
