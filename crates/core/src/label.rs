//! Compact forwarding labels and explicit routes (paper §4.2, "Addresses").
//!
//! A node's address carries "the necessary information to forward along
//! `ℓ_v ; v`": an explicit route given as a list of per-hop labels, one for
//! each hop along the path. Following the pathlet-routing format the paper
//! cites ([19]), the hop taken at a node of degree `d` is encoded in
//! `⌈log2 d⌉` bits — the index of the outgoing interface (the position of
//! the next hop in the forwarding node's sorted adjacency list).
//!
//! On the CAIDA router-level map the paper measures a maximum address size
//! of 10.6 bytes, a 95th percentile of 5 bytes and a mean of 2.93 bytes;
//! the `exp_address_size` experiment regenerates the equivalent numbers on
//! the synthetic router-level topology.
//!
//! This module provides:
//!
//! * [`BitWriter`] / [`BitReader`] — minimal MSB-first bit streams,
//! * [`ExplicitRoute`] — a route as a list of interface indices, with
//!   encoding to/decoding from the compact bit format and the byte-size
//!   accounting used in the paper's Table 7,
//! * the forwarding-label mapping each node keeps from label to outgoing
//!   interface (`label → neighbor`), which is simply the index into the
//!   node's sorted adjacency list (so it costs one entry per *used*
//!   neighbor; see Theorem 2's discussion).

use bytes::{BufMut, Bytes, BytesMut};
use disco_graph::{Graph, NodeId, Path};
use serde::{Deserialize, Serialize};

/// MSB-first bit stream writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits already written into the current partial byte (0..8).
    partial_bits: u8,
    partial: u8,
    len_bits: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the `width` least-significant bits of `value`, most
    /// significant first. `width` may be 0 (writes nothing).
    pub fn write_bits(&mut self, value: u64, width: u8) {
        assert!(width <= 64);
        for i in (0..width).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.partial = (self.partial << 1) | bit;
            self.partial_bits += 1;
            self.len_bits += 1;
            if self.partial_bits == 8 {
                self.buf.put_u8(self.partial);
                self.partial = 0;
                self.partial_bits = 0;
            }
        }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Finish, padding the last byte with zero bits.
    pub fn finish(mut self) -> Bytes {
        if self.partial_bits > 0 {
            self.partial <<= 8 - self.partial_bits;
            self.buf.put_u8(self.partial);
        }
        self.buf.freeze()
    }
}

/// MSB-first bit stream reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos_bits: 0 }
    }

    /// Read `width` bits (MSB first). Returns `None` if the stream is
    /// exhausted.
    pub fn read_bits(&mut self, width: u8) -> Option<u64> {
        assert!(width <= 64);
        if width as usize + self.pos_bits > self.data.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.data[self.pos_bits / 8];
            let bit = (byte >> (7 - (self.pos_bits % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos_bits += 1;
        }
        Some(out)
    }

    /// Bits consumed so far.
    pub fn position_bits(&self) -> usize {
        self.pos_bits
    }
}

/// Number of bits needed to address one of `degree` interfaces
/// (`⌈log2 d⌉`, and 0 when there is only one choice).
pub fn interface_bits(degree: usize) -> u8 {
    if degree <= 1 {
        0
    } else {
        (usize::BITS - (degree - 1).leading_zeros()) as u8
    }
}

/// The interface index of `next` in `at`'s sorted adjacency list.
/// Panics if `next` is not a neighbor of `at`.
pub fn interface_index(g: &Graph, at: NodeId, next: NodeId) -> usize {
    g.neighbors(at)
        .iter()
        .position(|nb| nb.node == next)
        .unwrap_or_else(|| panic!("{next} is not a neighbor of {at}"))
}

/// An explicit (source) route: the starting node plus one interface index
/// per hop. Encoded compactly, the hop leaving a node of degree `d`
/// occupies `⌈log2 d⌉` bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitRoute {
    start: NodeId,
    interfaces: Vec<u32>,
}

impl ExplicitRoute {
    /// Build the explicit route following `path` (from its source to its
    /// destination) in graph `g`.
    pub fn from_path(g: &Graph, path: &Path) -> Self {
        let mut interfaces = Vec::with_capacity(path.hop_count());
        for (at, next) in path.edges() {
            interfaces.push(interface_index(g, at, next) as u32);
        }
        ExplicitRoute {
            start: path.source(),
            interfaces,
        }
    }

    /// An empty route that never leaves `start`.
    pub fn empty(start: NodeId) -> Self {
        ExplicitRoute {
            start,
            interfaces: Vec::new(),
        }
    }

    /// The node the route starts at.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.interfaces.len()
    }

    /// The raw interface indices.
    pub fn interfaces(&self) -> &[u32] {
        &self.interfaces
    }

    /// Expand back into the node path by walking the interfaces in `g`.
    /// Returns `None` if an interface index is out of range (e.g. the graph
    /// changed since encoding).
    pub fn to_path(&self, g: &Graph) -> Option<Path> {
        let mut nodes = vec![self.start];
        let mut at = self.start;
        for &ifx in &self.interfaces {
            let nb = g.neighbors(at).get(ifx as usize)?;
            at = nb.node;
            nodes.push(at);
        }
        Some(Path::new(nodes))
    }

    /// Size of the compact encoding in bits: `Σ ⌈log2 deg(hop source)⌉`.
    pub fn encoded_bits(&self, g: &Graph) -> usize {
        let mut at = self.start;
        let mut bits = 0usize;
        for &ifx in &self.interfaces {
            bits += interface_bits(g.degree(at)) as usize;
            // follow to next node for the next hop's degree
            at = g.neighbors(at)[ifx as usize].node;
        }
        bits
    }

    /// Size of the compact encoding in whole bytes (the figure the paper
    /// reports: mean 2.93 B on the router-level Internet map).
    pub fn encoded_bytes(&self, g: &Graph) -> usize {
        self.encoded_bits(g).div_ceil(8)
    }

    /// Encode to the compact wire format.
    pub fn encode(&self, g: &Graph) -> Bytes {
        let mut w = BitWriter::new();
        let mut at = self.start;
        for &ifx in &self.interfaces {
            let width = interface_bits(g.degree(at));
            w.write_bits(ifx as u64, width);
            at = g.neighbors(at)[ifx as usize].node;
        }
        w.finish()
    }

    /// Decode a route of `hops` hops starting at `start` from the wire
    /// format produced by [`ExplicitRoute::encode`].
    pub fn decode(g: &Graph, start: NodeId, hops: usize, data: &[u8]) -> Option<Self> {
        let mut r = BitReader::new(data);
        let mut at = start;
        let mut interfaces = Vec::with_capacity(hops);
        for _ in 0..hops {
            let width = interface_bits(g.degree(at));
            let ifx = r.read_bits(width)? as u32;
            let nb = g.neighbors(at).get(ifx as usize)?;
            interfaces.push(ifx);
            at = nb.node;
        }
        Some(ExplicitRoute { start, interfaces })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::{generators, shortest_path};

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b1, 1);
        w.write_bits(0xABCD, 16);
        w.write_bits(0, 0);
        assert_eq!(w.len_bits(), 20);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(1), Some(0b1));
        assert_eq!(r.read_bits(16), Some(0xABCD));
        assert_eq!(r.read_bits(0), Some(0));
        // Only padding is left; asking for more than remains fails.
        assert_eq!(r.read_bits(8), None);
    }

    #[test]
    fn interface_bits_formula() {
        assert_eq!(interface_bits(0), 0);
        assert_eq!(interface_bits(1), 0);
        assert_eq!(interface_bits(2), 1);
        assert_eq!(interface_bits(3), 2);
        assert_eq!(interface_bits(4), 2);
        assert_eq!(interface_bits(5), 3);
        assert_eq!(interface_bits(256), 8);
        assert_eq!(interface_bits(257), 9);
    }

    #[test]
    fn explicit_route_roundtrip_on_random_graph() {
        let g = generators::gnm_connected(200, 800, 5);
        let spt = shortest_path::dijkstra(&g, NodeId(0));
        for target in [NodeId(50), NodeId(120), NodeId(199)] {
            let path = spt.path_to(target).unwrap();
            let route = ExplicitRoute::from_path(&g, &path);
            assert_eq!(route.hop_count(), path.hop_count());
            // Interface walk reproduces the node sequence.
            assert_eq!(route.to_path(&g).unwrap(), path);
            // Wire round trip.
            let wire = route.encode(&g);
            assert!(wire.len() <= route.encoded_bytes(&g) + 1);
            let decoded = ExplicitRoute::decode(&g, NodeId(0), route.hop_count(), &wire).unwrap();
            assert_eq!(decoded, route);
        }
    }

    #[test]
    fn empty_route() {
        let g = generators::ring(5);
        let r = ExplicitRoute::empty(NodeId(2));
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.encoded_bits(&g), 0);
        assert_eq!(r.encoded_bytes(&g), 0);
        assert_eq!(r.to_path(&g).unwrap(), Path::trivial(NodeId(2)));
    }

    #[test]
    fn encoded_size_matches_degree_profile() {
        // On a ring every node has degree 2, so each hop costs exactly 1 bit.
        let g = generators::ring(64);
        let spt = shortest_path::dijkstra(&g, NodeId(0));
        let path = spt.path_to(NodeId(10)).unwrap();
        let route = ExplicitRoute::from_path(&g, &path);
        assert_eq!(route.encoded_bits(&g), 10);
        assert_eq!(route.encoded_bytes(&g), 2);
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let g = generators::gnm_connected(100, 400, 9);
        let spt = shortest_path::dijkstra(&g, NodeId(0));
        let path = spt.path_to(NodeId(73)).unwrap();
        let route = ExplicitRoute::from_path(&g, &path);
        let wire = route.encode(&g);
        if wire.len() > 1 {
            let truncated = &wire[..wire.len() - 1];
            // Either decodes to fewer hops or fails — must not panic.
            let _ = ExplicitRoute::decode(&g, NodeId(0), route.hop_count(), truncated);
        }
    }
}
