//! Estimating the network size `n` (paper §4.1).
//!
//! Several of Disco's parameters — the landmark probability, the vicinity
//! size, the sloppy-group prefix length — are functions of `n`. The paper
//! proposes estimating `n` with *synopsis diffusion* [36]: each node draws a
//! small Flajolet–Martin-style synopsis and nodes gossip the bitwise OR of
//! the synopses they have seen; the union's lowest unset bit estimates the
//! count. The estimate is robust (order-and-duplicate-insensitive) and
//! cheap (a few hundred bytes per gossip message).
//!
//! This module provides
//!
//! * [`Synopsis`] — the FM sketch with union and count estimation,
//! * [`estimate_exact_union`] — the converged estimate every node would
//!   agree on after gossip stabilises,
//! * [`GossipEstimator`] — a [`disco_sim::Protocol`] implementation that
//!   actually runs the gossip in the discrete-event simulator, and
//! * [`NEstimates`] — per-node estimates with injectable error, used by the
//!   robustness experiment in §5.2 ("Error in Estimating Number of Nodes").

use disco_graph::NodeId;
use disco_sim::rng::rng_for;
use disco_sim::{Context, Protocol};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of independent FM sketches averaged together. More sketches →
/// lower variance; 64 gives ≈ 13% standard error, comparable to the paper's
/// "within 10% on average using 256-byte synopses".
pub const SKETCH_COUNT: usize = 64;
/// Bits per sketch (enough for n up to 2^32).
pub const SKETCH_BITS: usize = 32;
/// Flajolet–Martin bias correction constant.
const FM_PHI: f64 = 0.77351;

/// RNG stream for synopsis generation.
const SYNOPSIS_STREAM: u64 = 0x33;
/// RNG stream for error injection.
const ERROR_STREAM: u64 = 0x34;

/// A Flajolet–Martin synopsis: `SKETCH_COUNT` bitmaps that can be unioned
/// with other nodes' synopses; the union over a set of nodes estimates the
/// set's size.
///
/// The FM union is *monotone* — a departed node's contribution can never
/// leave it, so the estimate can only grow. The `epoch` counter fixes
/// this: when the protocol observes departures it starts a new epoch, and
/// every node restarts its union from its own sketch upon adopting the
/// higher epoch (see `DiscoProtocol`), so only live nodes re-contribute
/// and the estimate can *fall*. Synopses of different epochs never union.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Synopsis {
    sketches: Vec<u32>,
    epoch: u64,
}

impl Default for Synopsis {
    fn default() -> Self {
        Synopsis {
            sketches: vec![0; SKETCH_COUNT],
            epoch: 0,
        }
    }
}

impl Synopsis {
    /// The empty synopsis (estimates 0 nodes).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The synopsis contributed by a single node: in each sketch it sets bit
    /// `i` with probability `2^-(i+1)` (geometric), derived
    /// deterministically from the experiment seed and node id.
    pub fn for_node(node: NodeId, seed: u64) -> Self {
        let mut rng = rng_for(seed, SYNOPSIS_STREAM, node.0 as u64);
        let mut sketches = vec![0u32; SKETCH_COUNT];
        for s in sketches.iter_mut() {
            // Geometric: position of the first success in a fair-coin
            // sequence.
            let mut bit = 0usize;
            while bit + 1 < SKETCH_BITS && rng.gen::<bool>() {
                bit += 1;
            }
            *s = 1u32 << bit;
        }
        Synopsis { sketches, epoch: 0 }
    }

    /// The reset epoch this synopsis belongs to (0 at boot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Move this synopsis to `epoch` (adopting a newer reset round). The
    /// sketch contents are untouched; the caller restarts them from its
    /// own contribution first.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Union (bitwise OR) with another synopsis — the gossip merge
    /// operation. Order- and duplicate-insensitive. Only meaningful for
    /// synopses of the same epoch (the protocol filters cross-epoch
    /// gossip before merging).
    pub fn union(&mut self, other: &Synopsis) {
        debug_assert_eq!(
            self.epoch, other.epoch,
            "cross-epoch synopsis union (filter by epoch first)"
        );
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            *a |= b;
        }
    }

    /// Whether a union would change this synopsis.
    pub fn would_grow(&self, other: &Synopsis) -> bool {
        self.sketches
            .iter()
            .zip(&other.sketches)
            .any(|(a, b)| (*a | *b) != *a)
    }

    /// Estimate the number of distinct contributors.
    pub fn estimate(&self) -> f64 {
        let mean_r: f64 = self
            .sketches
            .iter()
            .map(|&s| lowest_zero_bit(s) as f64)
            .sum::<f64>()
            / self.sketches.len() as f64;
        2f64.powf(mean_r) / FM_PHI
    }

    /// Size of the synopsis on the wire, in bytes (the paper quotes
    /// 256-byte synopses).
    pub fn wire_bytes(&self) -> usize {
        self.sketches.len() * (SKETCH_BITS / 8)
    }
}

fn lowest_zero_bit(x: u32) -> u32 {
    (!x).trailing_zeros()
}

/// The estimate every node converges to once gossip has flooded the whole
/// (connected) network: the union of all per-node synopses.
pub fn estimate_exact_union(n: usize, seed: u64) -> f64 {
    let mut all = Synopsis::empty();
    for v in 0..n {
        all.union(&Synopsis::for_node(NodeId(v), seed));
    }
    all.estimate()
}

/// Per-node estimates of `n`, optionally with injected multiplicative error
/// (±`error` uniform), reproducing the paper's robustness experiment.
#[derive(Debug, Clone)]
pub struct NEstimates {
    estimates: Vec<usize>,
}

impl NEstimates {
    /// All nodes know `n` exactly.
    pub fn exact(n: usize) -> Self {
        NEstimates {
            estimates: vec![n; n],
        }
    }

    /// Each node's estimate is `n · (1 + e)` with `e` uniform in
    /// `[-error, +error]`, drawn deterministically from `seed`.
    pub fn with_error(n: usize, error: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&error), "error must be in [0, 1)");
        let estimates = (0..n)
            .map(|v| {
                let mut rng = rng_for(seed, ERROR_STREAM, v as u64);
                let e: f64 = rng.gen_range(-error..=error);
                ((n as f64) * (1.0 + e)).round().max(2.0) as usize
            })
            .collect();
        NEstimates { estimates }
    }

    /// Per-node estimates derived from the converged synopsis union (what
    /// the deployed protocol would actually use): every node holds the same
    /// union, so every node gets the same estimate.
    pub fn from_synopsis(n: usize, seed: u64) -> Self {
        let est = estimate_exact_union(n, seed).round().max(2.0) as usize;
        NEstimates {
            estimates: vec![est; n],
        }
    }

    /// Node `v`'s estimate of `n`.
    pub fn of(&self, v: NodeId) -> usize {
        self.estimates[v.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

/// Gossip message carrying a synopsis.
#[derive(Debug, Clone)]
pub struct GossipMsg(pub Synopsis);

/// A [`Protocol`] that runs synopsis diffusion: each node starts with its
/// own synopsis and forwards its union to all neighbors whenever the union
/// grows. At quiescence every node in a connected graph holds the global
/// union.
#[derive(Debug, Clone)]
pub struct GossipEstimator {
    /// This node's current union.
    pub union: Synopsis,
}

impl GossipEstimator {
    /// Initial state for `node` under experiment `seed`.
    pub fn new(node: NodeId, seed: u64) -> Self {
        GossipEstimator {
            union: Synopsis::for_node(node, seed),
        }
    }

    /// The node's current estimate of `n`.
    pub fn estimate(&self) -> f64 {
        self.union.estimate()
    }
}

impl Protocol for GossipEstimator {
    type Message = GossipMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        let bytes = self.union.wire_bytes();
        ctx.flood_sized(GossipMsg(self.union.clone()), bytes);
    }

    fn on_message(&mut self, _from: NodeId, msg: GossipMsg, ctx: &mut Context<'_, GossipMsg>) {
        if self.union.would_grow(&msg.0) {
            self.union.union(&msg.0);
            let bytes = self.union.wire_bytes();
            ctx.flood_sized(GossipMsg(self.union.clone()), bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;
    use disco_sim::Engine;

    #[test]
    fn single_node_estimate_is_order_one() {
        let s = Synopsis::for_node(NodeId(0), 1);
        let est = s.estimate();
        assert!(est > 0.3 && est < 6.0, "estimate {est}");
    }

    #[test]
    fn union_estimate_tracks_true_n_within_tolerance() {
        for &n in &[128usize, 1024, 8192] {
            let est = estimate_exact_union(n, 7);
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.35, "n={n} estimated as {est} (err {err:.2})");
        }
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let a = Synopsis::for_node(NodeId(1), 3);
        let b = Synopsis::for_node(NodeId(2), 3);
        let mut ab = a.clone();
        ab.union(&b);
        let mut ba = b.clone();
        ba.union(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.union(&b);
        assert_eq!(abb, ab);
        assert!(!ab.would_grow(&b));
    }

    #[test]
    fn wire_size_matches_paper_scale() {
        // Paper quotes 256-byte synopses; ours are the same order.
        let s = Synopsis::empty();
        assert_eq!(s.wire_bytes(), SKETCH_COUNT * 4);
        assert!(s.wire_bytes() <= 512);
    }

    #[test]
    fn injected_error_respects_bounds() {
        let n = 1000;
        let est = NEstimates::with_error(n, 0.6, 5);
        assert_eq!(est.len(), n);
        for v in 0..n {
            let e = est.of(NodeId(v)) as f64;
            assert!(e >= n as f64 * 0.39 && e <= n as f64 * 1.61, "estimate {e}");
        }
        let exact = NEstimates::exact(n);
        assert!(!exact.is_empty());
        assert!((0..n).all(|v| exact.of(NodeId(v)) == n));
    }

    #[test]
    fn gossip_converges_to_global_union_on_connected_graph() {
        let n = 128;
        let g = generators::gnm_connected(n, 512, 9);
        let seed = 9;
        let mut engine = Engine::new(&g, |v| GossipEstimator::new(v, seed));
        let report = engine.run();
        assert!(report.converged);
        let expect = estimate_exact_union(n, seed);
        for node in engine.nodes() {
            assert!((node.estimate() - expect).abs() < 1e-9);
        }
        // Messaging is bounded: each node forwards only when its union
        // grows, and a union can grow at most SKETCH_COUNT·SKETCH_BITS
        // times, so the total cannot explode.
        assert!(
            report.stats.total_sent()
                < (n as u64) * 8 * (SKETCH_COUNT as u64) * (SKETCH_BITS as u64)
        );
    }

    #[test]
    fn from_synopsis_estimates_are_uniform_across_nodes() {
        let est = NEstimates::from_synopsis(512, 3);
        let first = est.of(NodeId(0));
        assert!((0..512).all(|v| est.of(NodeId(v)) == first));
        let err = (first as f64 - 512.0).abs() / 512.0;
        assert!(err < 0.4, "estimate {first}");
    }
}
