//! The static simulator: Disco's post-convergence state (paper §5.1).
//!
//! For topologies too large to run the full discrete-event protocol, the
//! paper uses "a static simulator which calculates the post-convergence
//! state of the network". [`DiscoState::build`] is that simulator: given a
//! graph and a configuration it directly computes, for every node,
//!
//! * whether it is a landmark and which landmark is closest,
//! * its address (closest landmark + explicit route),
//! * its vicinity (the `Θ(√(n log n))` closest nodes),
//! * its sloppy group and overlay links,
//! * the landmark-resolution database shard it stores (if it is a landmark).
//!
//! The state produced here is what the paper's §5.2 measures ("State"), and
//! what [`crate::routing::DiscoRouter`] routes over. The accuracy of this
//! shortcut relative to the event-driven protocol is itself one of the
//! paper's reported experiments (§5.2 "Accuracy of static simulation"),
//! reproduced by the `exp_static_accuracy` binary.

use crate::address::Address;
use crate::config::DiscoConfig;
use crate::estimate_n::NEstimates;
use crate::landmark;
use crate::name::FlatName;
use crate::overlay::Overlay;
use crate::resolution::{ResolutionDatabase, ResolutionRing};
use crate::sloppy_group::SloppyGrouping;
use crate::vicinity::{self, Vicinity};
use disco_graph::{dijkstra, multi_source_dijkstra, FxHashMap, Graph, NodeId, Path, Weight};

/// Post-convergence Disco state for an entire network.
#[derive(Debug, Clone)]
pub struct DiscoState {
    cfg: DiscoConfig,
    n: usize,
    /// Flat name of each node.
    names: Vec<FlatName>,
    /// Per-node estimates of `n` (exact unless the config injects error).
    estimates: NEstimates,
    /// Landmark ids in increasing order.
    landmarks: Vec<NodeId>,
    is_landmark: Vec<bool>,
    /// Landmark id → index into the per-landmark vectors (`FxHashMap`
    /// like every other simulator-internal map: deterministic iteration
    /// and no SipHash cost on the per-address path reconstructions).
    landmark_index: FxHashMap<NodeId, usize>,
    /// Closest landmark of each node.
    closest_landmark: Vec<NodeId>,
    /// Distance to the closest landmark.
    closest_landmark_dist: Vec<Weight>,
    /// Address of each node (closest landmark + explicit route).
    addresses: Vec<Address>,
    /// Vicinity of each node.
    vicinities: Vec<Vicinity>,
    /// For each landmark (by landmark index): distance from the landmark to
    /// every node.
    landmark_dist: Vec<Vec<Weight>>,
    /// For each landmark (by landmark index): parent of every node on the
    /// shortest-path tree rooted at the landmark (`u32::MAX` = the landmark
    /// itself / unreachable).
    landmark_parent: Vec<Vec<u32>>,
    /// Sloppy grouping of all nodes.
    grouping: SloppyGrouping,
    /// The address-dissemination overlay.
    overlay: Overlay,
    /// Consistent-hashing ring over the landmarks.
    resolution_ring: ResolutionRing,
    /// The converged name-resolution database.
    resolution_db: ResolutionDatabase,
}

impl DiscoState {
    /// Build the converged state over `graph` with synthetic flat names
    /// (`FlatName::synthetic(i)` for node `i`), single-threaded.
    pub fn build(graph: &Graph, cfg: &DiscoConfig) -> Self {
        Self::build_parallel(graph, cfg, 1)
    }

    /// Build the converged state fanning the expensive, embarrassingly
    /// parallel stages — one shortest-path tree per landmark and one
    /// truncated tree per node's vicinity — over `threads` worker threads
    /// (`0` = one per available CPU). Every worker writes its own
    /// index-addressed slot, so the result is identical to [`Self::build`]
    /// for any thread count.
    pub fn build_parallel(graph: &Graph, cfg: &DiscoConfig, threads: usize) -> Self {
        let names: Vec<FlatName> = (0..graph.node_count()).map(FlatName::synthetic).collect();
        Self::build_with_names_parallel(graph, cfg, names, threads)
    }

    /// Build the converged state with caller-supplied flat names (one per
    /// node, same order as node ids), single-threaded.
    pub fn build_with_names(graph: &Graph, cfg: &DiscoConfig, names: Vec<FlatName>) -> Self {
        Self::build_with_names_parallel(graph, cfg, names, 1)
    }

    /// [`Self::build_with_names`] with the [`Self::build_parallel`] thread
    /// knob.
    pub fn build_with_names_parallel(
        graph: &Graph,
        cfg: &DiscoConfig,
        names: Vec<FlatName>,
        threads: usize,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        let mut pool = scoped_threadpool::Pool::new(threads as u32);
        let n = graph.node_count();
        assert!(n >= 2, "Disco needs at least two nodes");
        assert_eq!(names.len(), n, "one name per node required");

        // Per-node estimates of n (optionally with injected error, §5.2).
        let estimates = if cfg.n_estimate_error > 0.0 {
            NEstimates::with_error(n, cfg.n_estimate_error, cfg.seed ^ 0xee)
        } else {
            NEstimates::exact(n)
        };

        // Landmark election (§4.2).
        let landmarks = landmark::select_landmarks_with_estimates(n, cfg, |v| estimates.of(v));
        let mut is_landmark = vec![false; n];
        for &lm in &landmarks {
            is_landmark[lm.0] = true;
        }
        let landmark_index: FxHashMap<NodeId, usize> = landmarks
            .iter()
            .enumerate()
            .map(|(i, &lm)| (lm, i))
            .collect();

        // Closest landmark of every node, and the shortest-path forest
        // toward the closest landmarks (for addresses).
        let closest = multi_source_dijkstra(graph, &landmarks);
        let mut closest_landmark = vec![NodeId(0); n];
        let mut closest_landmark_dist = vec![0.0; n];
        for v in graph.nodes() {
            closest_landmark[v.0] = closest.closest_source(v).expect("graph must be connected");
            closest_landmark_dist[v.0] = closest.distance(v).unwrap();
        }

        // Full shortest-path tree from every landmark: distances + parents.
        // Needed for the `ℓ ; v` legs of routes and for addresses. The
        // trees are independent — one pool job per landmark.
        let mut landmark_dist: Vec<Vec<Weight>> = vec![Vec::new(); landmarks.len()];
        let mut landmark_parent: Vec<Vec<u32>> = vec![Vec::new(); landmarks.len()];
        pool.scoped(|scope| {
            for ((&lm, dist_slot), parent_slot) in landmarks
                .iter()
                .zip(landmark_dist.iter_mut())
                .zip(landmark_parent.iter_mut())
            {
                scope.execute(move || {
                    let tree = dijkstra(graph, lm);
                    let mut dist = vec![Weight::INFINITY; n];
                    let mut parent = vec![u32::MAX; n];
                    for v in graph.nodes() {
                        if let Some(d) = tree.distance(v) {
                            dist[v.0] = d;
                        }
                        if let Some(p) = tree.parent(v) {
                            parent[v.0] = p.0 as u32;
                        }
                    }
                    *dist_slot = dist;
                    *parent_slot = parent;
                });
            }
        });

        // Addresses: explicit route from the closest landmark to the node.
        let addresses: Vec<Address> = graph
            .nodes()
            .map(|v| {
                let lm = closest_landmark[v.0];
                if lm == v {
                    Address::landmark_self(v)
                } else {
                    let li = landmark_index[&lm];
                    let path = reconstruct_path_from_parents(&landmark_parent[li], lm, v);
                    Address::from_landmark_path(graph, v, &path)
                }
            })
            .collect();

        // Vicinities (§4.2): the Θ(√(n log n)) closest nodes, one
        // truncated Dijkstra per node, fanned over the pool.
        let vicinities =
            vicinity::all_vicinities_pooled(graph, cfg, |v| estimates.of(v), &mut pool);

        // Sloppy groups and overlay (§4.4).
        let grouping = SloppyGrouping::build(n, cfg, &names, |v| estimates.of(v));
        let overlay = Overlay::build(&grouping, cfg);

        // Name resolution database over the landmarks (§4.3).
        let resolution_ring = ResolutionRing::new(&landmarks, cfg);
        let resolution_db = ResolutionDatabase::build(&resolution_ring, &names, &addresses);

        DiscoState {
            cfg: cfg.clone(),
            n,
            names,
            estimates,
            landmarks,
            is_landmark,
            landmark_index,
            closest_landmark,
            closest_landmark_dist,
            addresses,
            vicinities,
            landmark_dist,
            landmark_parent,
            grouping,
            overlay,
            resolution_ring,
            resolution_db,
        }
    }

    /// The configuration the state was built with.
    pub fn config(&self) -> &DiscoConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The flat name of node `v`.
    pub fn name_of(&self, v: NodeId) -> &FlatName {
        &self.names[v.0]
    }

    /// All flat names, indexed by node id.
    pub fn names(&self) -> &[FlatName] {
        &self.names
    }

    /// Per-node estimates of `n` used during construction.
    pub fn estimates(&self) -> &NEstimates {
        &self.estimates
    }

    /// The landmark set, sorted by node id.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Whether `v` is a landmark.
    pub fn is_landmark(&self, v: NodeId) -> bool {
        self.is_landmark[v.0]
    }

    /// The closest landmark `ℓ_v` of node `v`.
    pub fn closest_landmark(&self, v: NodeId) -> NodeId {
        self.closest_landmark[v.0]
    }

    /// Distance `d(v, ℓ_v)`.
    pub fn closest_landmark_distance(&self, v: NodeId) -> Weight {
        self.closest_landmark_dist[v.0]
    }

    /// The address of node `v`.
    pub fn address_of(&self, v: NodeId) -> &Address {
        &self.addresses[v.0]
    }

    /// All addresses, indexed by node id.
    pub fn addresses(&self) -> &[Address] {
        &self.addresses
    }

    /// The vicinity of node `v`.
    pub fn vicinity(&self, v: NodeId) -> &Vicinity {
        &self.vicinities[v.0]
    }

    /// Distance from landmark `lm` to node `v`. Panics if `lm` is not a
    /// landmark.
    pub fn landmark_distance(&self, lm: NodeId, v: NodeId) -> Weight {
        let li = self.landmark_index[&lm];
        self.landmark_dist[li][v.0]
    }

    /// The shortest path from landmark `lm` to node `v` along `lm`'s
    /// shortest-path tree. Panics if `lm` is not a landmark.
    pub fn landmark_path(&self, lm: NodeId, v: NodeId) -> Path {
        let li = self.landmark_index[&lm];
        reconstruct_path_from_parents(&self.landmark_parent[li], lm, v)
    }

    /// The sloppy grouping.
    pub fn grouping(&self) -> &SloppyGrouping {
        &self.grouping
    }

    /// The dissemination overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The consistent-hashing ring over the landmarks.
    pub fn resolution_ring(&self) -> &ResolutionRing {
        &self.resolution_ring
    }

    /// The converged name-resolution database.
    pub fn resolution_db(&self) -> &ResolutionDatabase {
        &self.resolution_db
    }

    /// Whether node `s` stores node `t`'s address through the sloppy-group
    /// dissemination, i.e. whether `t` considers `s` a member of `G(t)`.
    pub fn knows_address(&self, s: NodeId, t: NodeId) -> bool {
        s == t || self.grouping.considers_member(t, s)
    }

    /// The member of `V(s)` with the longest hash-prefix match against
    /// `h(t)` — the node the first packet of a flow is sent toward when the
    /// source knows neither a direct route nor the destination's address.
    /// Ties are broken toward the closer node, then the lower id.
    pub fn best_group_proxy(&self, s: NodeId, t: NodeId) -> Option<NodeId> {
        let target = self.grouping.hash_of(t);
        let mut best: Option<(u32, Weight, NodeId)> = None;
        for (w, d) in self.vicinity(s).members() {
            if w == s {
                continue;
            }
            let plen = self.grouping.hash_of(w).common_prefix_len(target);
            let candidate = (plen, d, w);
            best = Some(match best {
                None => candidate,
                Some(cur) => {
                    // Longer prefix wins; then smaller distance; then id.
                    if candidate.0 > cur.0
                        || (candidate.0 == cur.0 && candidate.1 < cur.1)
                        || (candidate.0 == cur.0 && candidate.1 == cur.1 && candidate.2 < cur.2)
                    {
                        candidate
                    } else {
                        cur
                    }
                }
            });
        }
        best.map(|(_, _, w)| w)
    }

    /// Per-node count of routing-table entries in the data plane, broken
    /// down by component. See [`StateBreakdown`].
    pub fn state_breakdown(&self, graph: &Graph, v: NodeId) -> StateBreakdown {
        let landmark_entries = self.landmarks.len();
        let vicinity_entries = self.vicinity(v).len().saturating_sub(1);
        // Forwarding-label mappings: one per neighbor that is actually used
        // as a next hop toward a landmark or vicinity member; bounded by
        // both the degree and the number of destinations (Theorem 2).
        let label_entries = graph.degree(v).min(landmark_entries + vicinity_entries);
        let resolution_entries = if self.is_landmark(v) {
            self.resolution_db.entries_at(v)
        } else {
            0
        };
        let group_address_entries = self
            .grouping
            .perceived_group(v)
            .iter()
            .filter(|&&w| w != v && self.grouping.considers_member(w, v))
            .count();
        let overlay_entries = self.overlay.degree(v);
        StateBreakdown {
            landmark_entries,
            vicinity_entries,
            label_entries,
            resolution_entries,
            group_address_entries,
            overlay_entries,
        }
    }
}

/// Breakdown of one node's data-plane routing state into the components of
/// Theorem 2's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateBreakdown {
    /// Routes to all landmarks.
    pub landmark_entries: usize,
    /// Routes to the vicinity (excluding the node itself).
    pub vicinity_entries: usize,
    /// Compact forwarding-label → interface mappings.
    pub label_entries: usize,
    /// Name-resolution entries stored (landmarks only).
    pub resolution_entries: usize,
    /// Addresses stored on behalf of the sloppy group (Disco only).
    pub group_address_entries: usize,
    /// Overlay neighbor entries (Disco only).
    pub overlay_entries: usize,
}

impl StateBreakdown {
    /// Total entries for the name-dependent protocol (NDDisco): landmarks,
    /// vicinity, labels and the resolution shard.
    pub fn nddisco_total(&self) -> usize {
        self.landmark_entries + self.vicinity_entries + self.label_entries + self.resolution_entries
    }

    /// Total entries for full Disco: NDDisco plus the sloppy-group address
    /// store and the overlay links.
    pub fn disco_total(&self) -> usize {
        self.nddisco_total() + self.group_address_entries + self.overlay_entries
    }
}

/// Rebuild the path `root ; v` from a parent array of the shortest-path
/// tree rooted at `root` (`parent[x]` = predecessor of `x` on the path from
/// `root`, `u32::MAX` for the root itself).
fn reconstruct_path_from_parents(parent: &[u32], root: NodeId, v: NodeId) -> Path {
    let mut nodes = vec![v];
    let mut cur = v;
    while cur != root {
        let p = parent[cur.0];
        assert!(
            p != u32::MAX,
            "node {cur} is not reachable from landmark {root}"
        );
        cur = NodeId(p as usize);
        nodes.push(cur);
    }
    nodes.reverse();
    Path::new(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    fn small_state(seed: u64) -> (Graph, DiscoState) {
        let g = generators::gnm_average_degree(256, 8.0, seed);
        let cfg = DiscoConfig::seeded(seed);
        let st = DiscoState::build(&g, &cfg);
        (g, st)
    }

    #[test]
    fn landmarks_and_closest_assignments_are_consistent() {
        let (g, st) = small_state(1);
        assert!(!st.landmarks().is_empty());
        for v in g.nodes() {
            let lm = st.closest_landmark(v);
            assert!(st.is_landmark(lm));
            // The recorded distance matches the landmark tree distance.
            let d = st.closest_landmark_distance(v);
            assert!((st.landmark_distance(lm, v) - d).abs() < 1e-9);
            // No other landmark is strictly closer.
            for &other in st.landmarks() {
                assert!(st.landmark_distance(other, v) + 1e-9 >= d);
            }
        }
    }

    #[test]
    fn addresses_embed_valid_landmark_routes() {
        let (g, st) = small_state(2);
        for v in g.nodes() {
            let addr = st.address_of(v);
            assert_eq!(addr.node, v);
            assert_eq!(addr.landmark, st.closest_landmark(v));
            let path = addr.route_path(&g).unwrap();
            assert_eq!(path.source(), addr.landmark);
            assert_eq!(path.destination(), v);
            assert!(path.is_valid(&g));
            assert!((path.length(&g) - st.closest_landmark_distance(v)).abs() < 1e-9);
        }
    }

    #[test]
    fn landmark_paths_are_shortest() {
        let (g, st) = small_state(3);
        let lm = st.landmarks()[0];
        let tree = dijkstra(&g, lm);
        for v in g.nodes().step_by(17) {
            let p = st.landmark_path(lm, v);
            assert!((p.length(&g) - tree.distance(v).unwrap()).abs() < 1e-9);
            assert_eq!(p.source(), lm);
            assert_eq!(p.destination(), v);
        }
    }

    #[test]
    fn every_vicinity_contains_a_landmark_whp() {
        // The stretch guarantee needs ℓ within each vicinity w.h.p.; on a
        // 256-node random graph with default constants this should hold for
        // every node.
        let (g, st) = small_state(4);
        for v in g.nodes() {
            let has_landmark = st.vicinity(v).members().any(|(w, _)| st.is_landmark(w));
            assert!(has_landmark, "vicinity of {v} contains no landmark");
        }
    }

    #[test]
    fn vicinity_group_intersection_exists_for_sampled_pairs() {
        // The name-independent routing step requires V(s) ∩ G(t) ≠ ∅ w.h.p.
        let (_, st) = small_state(5);
        let n = st.node_count();
        for s in (0..n).step_by(13) {
            for t in (0..n).step_by(29) {
                if s == t {
                    continue;
                }
                let w = st.best_group_proxy(NodeId(s), NodeId(t));
                assert!(w.is_some());
            }
        }
    }

    #[test]
    fn state_breakdown_totals_are_bounded() {
        let (g, st) = small_state(6);
        let n = st.node_count() as f64;
        let bound = 12.0 * (n * n.ln()).sqrt(); // generous Θ(√(n log n)) bound
        for v in g.nodes() {
            let b = st.state_breakdown(&g, v);
            assert!(b.vicinity_entries > 0);
            assert!(b.landmark_entries == st.landmarks().len());
            assert!(
                (b.disco_total() as f64) < bound,
                "node {v} has {} entries (bound {bound})",
                b.disco_total()
            );
            assert!(b.nddisco_total() <= b.disco_total());
        }
    }

    #[test]
    fn knows_address_reflects_group_membership() {
        let (_, st) = small_state(7);
        let n = st.node_count();
        for t in (0..n).step_by(11) {
            let t = NodeId(t);
            assert!(st.knows_address(t, t));
            for &m in st.grouping().core_group(t) {
                assert!(st.knows_address(m, t));
            }
        }
    }

    #[test]
    fn build_with_custom_names() {
        let g = generators::ring(16);
        let names: Vec<FlatName> = (0..16)
            .map(|i| FlatName::from_str_name(&format!("host{i}.example")))
            .collect();
        let st = DiscoState::build_with_names(&g, &DiscoConfig::seeded(1), names.clone());
        assert_eq!(st.name_of(NodeId(3)), &names[3]);
        assert_eq!(st.names().len(), 16);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = generators::gnm_average_degree(192, 8.0, 42);
        let cfg = DiscoConfig::seeded(42);
        let a = DiscoState::build(&g, &cfg);
        let b = DiscoState::build_parallel(&g, &cfg, 3);
        assert_eq!(a.landmarks, b.landmarks);
        assert_eq!(a.closest_landmark, b.closest_landmark);
        assert_eq!(a.closest_landmark_dist, b.closest_landmark_dist);
        assert_eq!(a.landmark_dist, b.landmark_dist);
        assert_eq!(a.landmark_parent, b.landmark_parent);
        for v in g.nodes() {
            assert_eq!(
                a.vicinity(v).members().collect::<Vec<_>>(),
                b.vicinity(v).members().collect::<Vec<_>>(),
                "vicinity of {v} differs"
            );
            assert_eq!(
                a.address_of(v).route_path(&g).unwrap().nodes(),
                b.address_of(v).route_path(&g).unwrap().nodes(),
                "address of {v} differs"
            );
        }
        // threads = 0 auto-sizes to the machine and must also agree.
        let c = DiscoState::build_parallel(&g, &cfg, 0);
        assert_eq!(a.landmark_dist, c.landmark_dist);
        assert_eq!(a.closest_landmark, c.closest_landmark);
    }

    #[test]
    #[should_panic]
    fn build_rejects_wrong_name_count() {
        let g = generators::ring(8);
        let names: Vec<FlatName> = (0..4).map(FlatName::synthetic).collect();
        let _ = DiscoState::build_with_names(&g, &DiscoConfig::seeded(1), names);
    }
}
