//! The data plane: per-node forwarding tables compiled from the RIB's
//! selection column, double-buffered behind an epoch stamp.
//!
//! The control plane ([`crate::path_vector`], [`crate::protocol`]) converges
//! routes; this module *serves* them. A [`ForwardingTable`] is the selection
//! column of one node's [`crate::rib::RibStore`] frozen into flat sorted
//! arrays in the shape of ariadne's `FlatRoute` range table: one sorted
//! `u32` destination-key array probed by a branchless binary search, a
//! parallel dense next-hop array, the landmark ring (sorted hash positions,
//! so the paper's name→owner resolution is one more binary search instead
//! of a landmark-set scan), and a landmark-fallback entry (the next hop
//! toward this node's closest landmark — where a packet goes when the
//! destination is neither table-resident nor resolved yet). Label/shortcut
//! resolution is folded in at compile time: each entry carries the selected
//! path's hop count, so a lookup prices the remaining source-route label
//! without touching the path arena, and a table hit anywhere along a route
//! is exactly the paper's `ToDestination` shortcut (the first node that
//! holds the destination in its vicinity routes directly).
//!
//! Lookups must keep running while churn repairs mutate the RIB, so tables
//! are published, not shared: a [`TablePublisher`] owns two buffers and
//! swaps them atomically (from the simulation's point of view — one `swap`
//! between events) on publish, stamping a monotone `epoch` and the
//! control plane's `revision` ([`crate::protocol::DiscoProtocol`]'s
//! `control_revision`, i.e. the path-vector selection revision). Republish
//! is therefore driven by *actual selection changes* and debounced in
//! simulation time; between publishes the data plane forwards over the last
//! epoch and any hop that churn has since removed shows up as a packet
//! *lost to a stale epoch* — the served-traffic cost of convergence lag
//! that `exp_forward` measures.

use crate::hash::NameHash;
use disco_graph::NodeId;

/// `sel_nbr`-style sentinel for "no fallback hop".
const NO_HOP: u32 = u32::MAX;

/// One resolved forwarding entry: the dense payload behind a key hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatRoute {
    /// Neighbor the packet leaves on.
    pub next_hop: NodeId,
    /// Hop count of the selected path (the label cost in hops — what the
    /// explicit source route would traverse).
    pub path_hops: u16,
}

/// A node's compiled data plane: flat sorted arrays, immutable between
/// publishes. Plain `u32`/`u64` vectors, so the table is `Send` and a
/// sharded run can compile on the owner shard and ship it to the
/// coordinator (unlike the RIB, whose interned paths are thread-local).
#[derive(Debug, Clone, Default)]
pub struct ForwardingTable {
    /// Node this table was compiled on.
    node: u32,
    /// Publisher's monotone swap counter (0 = never published).
    epoch: u64,
    /// Control-plane revision the compile saw
    /// (`DiscoProtocol::control_revision`).
    revision: u64,
    /// Sorted destination node ids.
    keys: Vec<u32>,
    /// Next hop per key (parallel to `keys`).
    hops: Vec<u32>,
    /// Selected-path hop count per key (parallel to `keys`).
    path_hops: Vec<u16>,
    /// Landmark ring positions (`NameHasher::hash_u64(lm)`), sorted.
    lm_pos: Vec<u64>,
    /// Landmark id per ring position (parallel to `lm_pos`).
    lm_id: Vec<u32>,
    /// Landmark-fallback entry: this node's closest landmark and the next
    /// hop toward it (`NO_HOP` = none learned / node is the landmark).
    fallback_lm: u32,
    fallback_hop: u32,
    /// Compile staging `(key, hop, path_hops)`, reused across epochs so a
    /// republish allocates nothing in steady state.
    scratch: Vec<(u32, u32, u16)>,
}

impl ForwardingTable {
    /// An empty, never-published table for `node`.
    pub fn new(node: NodeId) -> Self {
        Self {
            node: node.0 as u32,
            fallback_lm: NO_HOP,
            fallback_hop: NO_HOP,
            ..Self::default()
        }
    }

    /// Node this table belongs to.
    pub fn node(&self) -> NodeId {
        NodeId(self.node as usize)
    }

    /// Publisher swap counter (0 = never published).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Control-plane revision this table was compiled at.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether the control plane has moved since this table was compiled —
    /// lookups still answer (over the old epoch) but may name hops the RIB
    /// no longer selects.
    pub fn is_stale(&self, current_revision: u64) -> bool {
        self.revision != current_revision
    }

    /// Table-resident destinations.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table holds no destinations.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Landmarks on the embedded resolution ring.
    pub fn ring_len(&self) -> usize {
        self.lm_pos.len()
    }

    /// Heap bytes of the published arrays (10 B per destination plus 12 B
    /// per ring landmark — the deployment-question number next to the
    /// RIB's ~25 B/dest selection column).
    pub fn approx_bytes(&self) -> usize {
        self.keys.len() * (4 + 4 + 2) + self.lm_pos.len() * (8 + 4)
    }

    /// Branchless lower-bound probe: index of the slot holding `key`, if
    /// resident. The loop body is a compare + conditional add over a dense
    /// `u32` array — no pointer chasing, and the halving bound means the
    /// branch predictor has nothing to mispredict on the data path.
    #[inline]
    fn position(&self, key: u32) -> Option<usize> {
        let keys = &self.keys[..];
        if keys.is_empty() {
            return None;
        }
        let mut base = 0usize;
        let mut size = keys.len();
        while size > 1 {
            let half = size / 2;
            // cmov, not a branch: `probe < key` selects the upper half.
            base += usize::from(keys[base + half - 1] < key) * half;
            size -= half;
        }
        (keys[base] == key).then_some(base)
    }

    /// Next hop for `dest`, if table-resident.
    #[inline]
    pub fn lookup(&self, dest: NodeId) -> Option<NodeId> {
        self.position(dest.0 as u32)
            .map(|i| NodeId(self.hops[i] as usize))
    }

    /// Full entry for `dest`, if table-resident.
    #[inline]
    pub fn entry(&self, dest: NodeId) -> Option<FlatRoute> {
        self.position(dest.0 as u32).map(|i| FlatRoute {
            next_hop: NodeId(self.hops[i] as usize),
            path_hops: self.path_hops[i],
        })
    }

    /// The landmark owning `hash` on the compiled ring: first ring
    /// position clockwise of the hash (standard consistent hashing) —
    /// the same rule as `DiscoProtocol::owner_landmark`, resolved by one
    /// binary search instead of a landmark-set scan.
    #[inline]
    pub fn owner_landmark(&self, hash: NameHash) -> Option<NodeId> {
        if self.lm_pos.is_empty() {
            return None;
        }
        let h = hash.value();
        let mut i = self.lm_pos.partition_point(|&p| p < h);
        if i == self.lm_pos.len() {
            i = 0; // wrap: smallest position on the ring
        }
        Some(NodeId(self.lm_id[i] as usize))
    }

    /// The landmark-fallback entry: `(closest landmark, next hop toward
    /// it)`. `None` until a landmark route is learned, or when this node
    /// is its own closest landmark (nothing to forward toward).
    pub fn fallback(&self) -> Option<(NodeId, NodeId)> {
        (self.fallback_hop != NO_HOP).then_some((
            NodeId(self.fallback_lm as usize),
            NodeId(self.fallback_hop as usize),
        ))
    }

    /// Sorted destination keys (test/metrics introspection).
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    // ---- compile-side builder: `begin` → `push_*`/`set_fallback` →
    // `seal`, driven by `DiscoProtocol::compile_forwarding_into` (any
    // protocol with a selection column can compile its own) ----

    /// Reset for a fresh compile at `revision`, keeping allocations.
    pub fn begin(&mut self, node: NodeId, revision: u64) {
        self.node = node.0 as u32;
        self.revision = revision;
        self.scratch.clear();
        self.lm_pos.clear();
        self.lm_id.clear();
        self.fallback_lm = NO_HOP;
        self.fallback_hop = NO_HOP;
    }

    /// Stage one selection-column row.
    pub fn push_route(&mut self, dest: NodeId, next_hop: NodeId, path_hops: usize) {
        self.scratch.push((
            dest.0 as u32,
            next_hop.0 as u32,
            path_hops.min(u16::MAX as usize) as u16,
        ));
    }

    /// Stage one landmark-ring slot.
    pub fn push_landmark(&mut self, pos: u64, lm: NodeId) {
        self.lm_pos.push(pos);
        self.lm_id.push(lm.0 as u32);
    }

    /// Record the landmark-fallback entry.
    pub fn set_fallback(&mut self, lm: NodeId, hop: NodeId) {
        self.fallback_lm = lm.0 as u32;
        self.fallback_hop = hop.0 as u32;
    }

    /// Sort the staging rows into the published arrays.
    pub fn seal(&mut self) {
        self.scratch.sort_unstable();
        self.keys.clear();
        self.hops.clear();
        self.path_hops.clear();
        self.keys.reserve(self.scratch.len());
        self.hops.reserve(self.scratch.len());
        self.path_hops.reserve(self.scratch.len());
        for &(k, h, p) in &self.scratch {
            debug_assert!(self.keys.last() != Some(&k), "duplicate selection row");
            self.keys.push(k);
            self.hops.push(h);
            self.path_hops.push(p);
        }
        // Ring slots arrive in landmark-table iteration order; sort by
        // position (ids are distinct, mix64 collisions are not a practical
        // concern — ties would differ from the scan rule only there).
        let mut ring: Vec<(u64, u32)> = self
            .lm_pos
            .iter()
            .copied()
            .zip(self.lm_id.iter().copied())
            .collect();
        ring.sort_unstable();
        self.lm_pos.clear();
        self.lm_id.clear();
        for (p, id) in ring {
            self.lm_pos.push(p);
            self.lm_id.push(id);
        }
    }
}

/// Epoch-based double buffer between the control plane and the data plane.
///
/// The publisher owns a *front* table (the published epoch lookups run
/// against) and a *back* scratch buffer. A publish compiles into the back
/// buffer and swaps — one pointer-sized exchange, so readers never observe
/// a half-built table — then stamps the next epoch. Publishes are driven by
/// the control revision ([`TablePublisher::needs_publish`]): no selection
/// change means no recompile, and changes within `debounce` simulation-time
/// units of the last publish are coalesced (churn bursts repair many routes;
/// republishing per flap would recompile the whole column each time).
#[derive(Debug)]
pub struct TablePublisher {
    front: ForwardingTable,
    back: ForwardingTable,
    /// Minimum simulation time between publishes.
    debounce: f64,
    last_pub: f64,
    published: bool,
    republishes: u64,
}

impl TablePublisher {
    /// A publisher for `node` coalescing publishes closer than `debounce`
    /// simulation-time units.
    pub fn new(node: NodeId, debounce: f64) -> Self {
        Self {
            front: ForwardingTable::new(node),
            back: ForwardingTable::new(node),
            debounce,
            last_pub: f64::NEG_INFINITY,
            published: false,
            republishes: 0,
        }
    }

    /// The published table (empty, epoch 0, until the first publish).
    pub fn table(&self) -> &ForwardingTable {
        &self.front
    }

    /// Whether any epoch has been published yet.
    pub fn has_published(&self) -> bool {
        self.published
    }

    /// Publishes performed so far (= the front table's epoch).
    pub fn republishes(&self) -> u64 {
        self.republishes
    }

    /// The published epoch's control revision (`None` until the first
    /// publish). With [`TablePublisher::may_publish_at`], this is the
    /// publisher-side half of [`TablePublisher::needs_publish`] — exposed
    /// so a sharded run can ship the decision inputs to the owner shard
    /// and reach the exact same publish/skip choices as a sequential run.
    pub fn published_revision(&self) -> Option<u64> {
        self.published.then_some(self.front.revision)
    }

    /// Whether the debounce window has passed at `now` (always true before
    /// the first publish).
    pub fn may_publish_at(&self, now: f64) -> bool {
        !self.published || now - self.last_pub >= self.debounce
    }

    /// Whether a publish at `now` would change anything: the control plane
    /// has moved past the published revision and the debounce window has
    /// passed. The first publish is never debounced.
    pub fn needs_publish(&self, revision: u64, now: f64) -> bool {
        match self.published_revision() {
            None => true,
            Some(pr) => pr != revision && self.may_publish_at(now),
        }
    }

    /// Publish a new epoch: `compile` fills the back buffer (via
    /// `DiscoProtocol::compile_forwarding_into`, or by installing a table
    /// compiled on another shard), then the buffers swap. The caller
    /// gates on [`TablePublisher::needs_publish`].
    pub fn publish_with(&mut self, now: f64, compile: impl FnOnce(&mut ForwardingTable)) {
        compile(&mut self.back);
        self.back.epoch = self.front.epoch + 1;
        std::mem::swap(&mut self.front, &mut self.back);
        self.last_pub = now;
        self.published = true;
        self.republishes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(rows: &[(u32, u32, u16)], ring: &[(u64, u32)]) -> ForwardingTable {
        let mut t = ForwardingTable::new(NodeId(0));
        t.begin(NodeId(0), 1);
        for &(k, h, p) in rows {
            t.push_route(NodeId(k as usize), NodeId(h as usize), p as usize);
        }
        for &(pos, lm) in ring {
            t.push_landmark(pos, NodeId(lm as usize));
        }
        t.seal();
        t
    }

    /// The branchless probe agrees with a linear scan on every key and on
    /// misses between, below and above the keys.
    #[test]
    fn lookup_matches_linear_scan() {
        let rows: Vec<(u32, u32, u16)> = (0..97u32).map(|i| (i * 3 + 1, i + 1000, 2)).collect();
        for cut in [0usize, 1, 2, 3, 7, 96, 97] {
            let t = table_of(&rows[..cut], &[]);
            for key in 0..300u32 {
                let want = rows[..cut]
                    .iter()
                    .find(|r| r.0 == key)
                    .map(|r| NodeId(r.1 as usize));
                assert_eq!(t.lookup(NodeId(key as usize)), want, "cut {cut} key {key}");
            }
        }
    }

    /// Ring resolution is first-position-clockwise with wraparound.
    #[test]
    fn owner_is_first_clockwise() {
        let t = table_of(&[], &[(100, 1), (500, 2), (900, 3)]);
        assert_eq!(t.owner_landmark(NameHash(50)), Some(NodeId(1)));
        assert_eq!(t.owner_landmark(NameHash(100)), Some(NodeId(1)));
        assert_eq!(t.owner_landmark(NameHash(101)), Some(NodeId(2)));
        assert_eq!(t.owner_landmark(NameHash(899)), Some(NodeId(3)));
        assert_eq!(t.owner_landmark(NameHash(901)), Some(NodeId(1)), "wraps");
        assert!(table_of(&[], &[]).owner_landmark(NameHash(0)).is_none());
    }

    /// Publishes swap epochs atomically, are revision-driven and debounced.
    #[test]
    fn publisher_debounces_and_stamps_epochs() {
        let mut p = TablePublisher::new(NodeId(7), 10.0);
        assert!(p.needs_publish(0, 0.0), "first publish is never debounced");
        p.publish_with(0.0, |t| {
            t.begin(NodeId(7), 3);
            t.push_route(NodeId(1), NodeId(2), 1);
            t.seal();
        });
        assert_eq!(p.table().epoch(), 1);
        assert_eq!(p.table().revision(), 3);
        assert!(!p.needs_publish(3, 100.0), "same revision: no republish");
        assert!(!p.needs_publish(4, 5.0), "inside the debounce window");
        assert!(p.needs_publish(4, 10.0));
        p.publish_with(10.0, |t| {
            t.begin(NodeId(7), 4);
            t.seal();
        });
        assert_eq!(p.table().epoch(), 2);
        assert!(p.table().is_empty(), "swap published the fresh compile");
        assert!(p.table().is_stale(9) && !p.table().is_stale(4));
        assert_eq!(p.republishes(), 2);
    }
}
