//! Vicinities (paper §4.2).
//!
//! The vicinity `V(v)` of a node `v` is the set of the `Θ(√(n log n))`
//! nodes closest to `v` (ties broken deterministically by node id). Knowing
//! shortest paths to the whole vicinity is what lets a source route well to
//! nearby destinations, and — together with the sloppy groups — what
//! guarantees that a source finds a member of any destination's group
//! within its own vicinity.
//!
//! Unlike S4's *clusters* (all nodes closer to `v` than to their own
//! landmark), a vicinity has a hard size cap, which is exactly why Disco's
//! per-node state is bounded on every topology (see the S4 comparison in
//! §4.2 and the adversarial tree test in `disco-baselines`).
//!
//! This module computes vicinities for the static simulator. The
//! distributed path-vector acceptance rule that converges to the same sets
//! lives in [`crate::path_vector`].

use crate::config::DiscoConfig;
use disco_graph::{k_nearest, Graph, NodeId, Weight};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The vicinity of one node: its `k` closest nodes with their distances,
/// in settling (non-decreasing distance) order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vicinity {
    owner: NodeId,
    /// Members in non-decreasing distance order (the owner itself is first,
    /// at distance 0).
    ordered: Vec<(NodeId, Weight)>,
    /// Same content as a map for O(1) membership tests.
    by_node: HashMap<NodeId, Weight>,
}

impl Vicinity {
    /// Compute the vicinity of `owner` containing the `size` closest nodes
    /// (including `owner` itself).
    pub fn compute(g: &Graph, owner: NodeId, size: usize) -> Self {
        let tree = k_nearest(g, owner, size);
        let ordered: Vec<(NodeId, Weight)> = tree
            .settled_order()
            .iter()
            .map(|&v| (v, tree.distance(v).unwrap()))
            .collect();
        let by_node = ordered.iter().copied().collect();
        Vicinity {
            owner,
            ordered,
            by_node,
        }
    }

    /// The node this vicinity belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of members (including the owner).
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Whether the vicinity is empty (never true for a computed vicinity).
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: NodeId) -> bool {
        self.by_node.contains_key(&v)
    }

    /// Distance from the owner to member `v`, if `v` is a member.
    pub fn distance(&self, v: NodeId) -> Option<Weight> {
        self.by_node.get(&v).copied()
    }

    /// Members in non-decreasing distance order.
    pub fn members(&self) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.ordered.iter().copied()
    }

    /// The vicinity radius: distance to the farthest member. The paper's
    /// control-plane optimisation has a node advertise this radius so
    /// neighbors can suppress useless announcements.
    pub fn radius(&self) -> Weight {
        self.ordered.last().map(|&(_, d)| d).unwrap_or(0.0)
    }
}

/// Compute vicinities for every node, using a per-node vicinity size taken
/// from the node's (possibly erroneous) estimate of `n`.
///
/// Returns a vector indexed by node id.
pub fn all_vicinities(
    g: &Graph,
    cfg: &DiscoConfig,
    estimate: impl Fn(NodeId) -> usize + Sync,
) -> Vec<Vicinity> {
    all_vicinities_pooled(g, cfg, estimate, &mut scoped_threadpool::Pool::new(1))
}

/// Nodes per pool job: coarse enough that job dispatch is noise, fine
/// enough that a large graph spreads evenly over the workers.
const VICINITY_CHUNK: usize = 64;

/// [`all_vicinities`] fanned out over a worker pool. Per-node vicinities
/// are independent, and each lands in its own index-addressed slot, so the
/// result is identical to the sequential computation regardless of thread
/// interleaving.
pub fn all_vicinities_pooled(
    g: &Graph,
    cfg: &DiscoConfig,
    estimate: impl Fn(NodeId) -> usize + Sync,
    pool: &mut scoped_threadpool::Pool,
) -> Vec<Vicinity> {
    let mut out: Vec<Option<Vicinity>> = (0..g.node_count()).map(|_| None).collect();
    pool.scoped(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(VICINITY_CHUNK).enumerate() {
            let estimate = &estimate;
            scope.execute(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let v = NodeId(chunk_idx * VICINITY_CHUNK + off);
                    *slot = Some(Vicinity::compute(g, v, cfg.vicinity_size(estimate(v))));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::generators;

    #[test]
    fn vicinity_has_requested_size_and_owner_first() {
        let g = generators::gnm_connected(256, 1024, 1);
        let v = Vicinity::compute(&g, NodeId(10), 30);
        assert_eq!(v.len(), 30);
        assert_eq!(v.members().next().unwrap(), (NodeId(10), 0.0));
        assert!(v.contains(NodeId(10)));
        assert_eq!(v.owner(), NodeId(10));
        assert!(!v.is_empty());
    }

    #[test]
    fn members_sorted_by_distance_and_radius_is_max() {
        let g = generators::geometric_connected(200, 8.0, 2);
        let v = Vicinity::compute(&g, NodeId(0), 25);
        let dists: Vec<f64> = v.members().map(|(_, d)| d).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((v.radius() - dists.last().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn vicinity_members_are_the_k_closest() {
        // Check against a full Dijkstra: every non-member must be at least
        // as far as the vicinity radius.
        let g = generators::gnm_connected(128, 512, 5);
        let k = 20;
        let v = Vicinity::compute(&g, NodeId(3), k);
        let full = disco_graph::dijkstra(&g, NodeId(3));
        for node in g.nodes() {
            if !v.contains(node) {
                assert!(full.distance(node).unwrap() >= v.radius() - 1e-12);
            }
        }
    }

    #[test]
    fn vicinity_capped_by_component_size() {
        let g = generators::line(5);
        let v = Vicinity::compute(&g, NodeId(0), 100);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn all_vicinities_cover_every_node() {
        let g = generators::gnm_connected(200, 800, 7);
        let cfg = DiscoConfig::seeded(7);
        let vs = all_vicinities(&g, &cfg, |_| 200);
        assert_eq!(vs.len(), 200);
        let expected = cfg.vicinity_size(200);
        assert!(vs.iter().all(|v| v.len() == expected));
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(v.owner(), NodeId(i));
        }
    }

    #[test]
    fn membership_is_not_symmetric_in_general() {
        // The paper stresses that s ∈ V(t) does not imply t ∈ V(s). Build a
        // graph where that is observable: a hub with many leaves plus a long
        // tail; with small vicinities the tail node sees the hub but not
        // vice versa.
        let g = generators::star(50);
        let tail = Vicinity::compute(&g, NodeId(1), 3);
        let hub = Vicinity::compute(&g, NodeId(0), 3);
        assert!(tail.contains(NodeId(0)));
        // The hub's 3-vicinity holds itself + two lowest-id leaves; node 49
        // is not among them, yet node 49's vicinity holds the hub.
        assert!(!hub.contains(NodeId(49)));
        let far = Vicinity::compute(&g, NodeId(49), 3);
        assert!(far.contains(NodeId(0)));
    }
}
