//! The bounded path-vector protocol that learns landmark and vicinity
//! routes (paper §4.2, "Learning paths to landmarks and vicinities").
//!
//! "Nodes learn shortest paths to landmarks and vicinities via a single,
//! standard path vector routing protocol. When learning paths, a route
//! announcement is accepted into v's routing table if and only if the
//! route's destination is a landmark or one of the Θ(√(n log n)) closest
//! nodes currently advertised to v. The entire routing table is then
//! exported to v's neighbors."
//!
//! The same machinery, with a different acceptance rule, also implements
//! the protocols Disco is compared against:
//!
//! * [`TableLimit::Unlimited`] — classic path-vector / shortest-path
//!   routing (every destination accepted), the paper's `Path-vector` curve,
//! * [`TableLimit::VicinityCap`] — NDDisco / Disco's rule (landmarks plus
//!   the `k` closest destinations),
//! * [`TableLimit::Cluster`] — S4's rule (landmarks plus every destination
//!   closer to the node than to its own landmark), which is what breaks
//!   S4's per-node state bound.
//!
//! Each route announcement forwarded to one neighbor counts as one message;
//! the per-node totals until quiescence are the quantity plotted in the
//! paper's Fig. 8.

use disco_graph::{NodeId, Weight};
use disco_sim::{Context, Protocol};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Acceptance rule for destinations other than landmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TableLimit {
    /// Accept every destination (classic path vector).
    Unlimited,
    /// Accept landmarks plus at most `size` closest destinations
    /// (NDDisco / Disco vicinities).
    VicinityCap {
        /// Maximum number of non-landmark entries.
        size: usize,
    },
    /// Accept landmarks plus destinations closer to this node than to their
    /// own closest landmark (S4 clusters).
    Cluster,
}

/// One route announcement: "I can reach `dest` over `path` at cost `dist`".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Announcement {
    /// The destination the route leads to.
    pub dest: NodeId,
    /// Distance from the announcing node to `dest`.
    pub dist: Weight,
    /// Path from the announcing node to `dest` (announcer first).
    pub path: Vec<NodeId>,
    /// Whether the destination is a landmark.
    pub dest_is_landmark: bool,
    /// The destination's current distance to its own closest landmark
    /// (`∞` until it has one); needed by the S4 cluster rule.
    pub dest_landmark_dist: Weight,
}

/// A converged routing-table entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Distance to the destination.
    pub dist: Weight,
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Full path (this node first, destination last).
    pub path: Vec<NodeId>,
    /// Whether the destination is a landmark.
    pub dest_is_landmark: bool,
    /// Destination's distance to its own closest landmark (used by the
    /// cluster rule; `∞` if unknown).
    pub dest_landmark_dist: Weight,
}

/// A path-vector node with a configurable acceptance rule.
#[derive(Debug, Clone)]
pub struct PathVectorNode {
    id: NodeId,
    is_landmark: bool,
    limit: TableLimit,
    /// Data-plane routing table: only destinations accepted by the table
    /// limit (plus the self entry).
    pub table: HashMap<NodeId, RouteEntry>,
    /// Control-plane knowledge: the best route heard for every destination
    /// any neighbor ever advertised (what the paper calls the full set of
    /// received announcements; forgetful routing would prune this).
    knowledge: HashMap<NodeId, RouteEntry>,
    /// Distance to this node's own closest landmark; re-announced when it
    /// improves (needed for the cluster rule).
    own_landmark_dist: Weight,
}

impl PathVectorNode {
    /// Create the node. `is_landmark` is this node's own (locally decided)
    /// landmark status; `limit` is the acceptance rule.
    pub fn new(id: NodeId, is_landmark: bool, limit: TableLimit) -> Self {
        PathVectorNode {
            id,
            is_landmark,
            limit,
            table: HashMap::new(),
            knowledge: HashMap::new(),
            own_landmark_dist: if is_landmark { 0.0 } else { Weight::INFINITY },
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node is a landmark.
    pub fn is_landmark(&self) -> bool {
        self.is_landmark
    }

    /// Distance to this node's closest landmark (∞ if none learned yet;
    /// 0 for landmarks).
    pub fn own_landmark_distance(&self) -> Weight {
        self.own_landmark_dist
    }

    /// Number of entries in the routing table (excluding the self entry).
    pub fn table_size(&self) -> usize {
        self.table.len().saturating_sub(1)
    }

    /// Converged distance to `dest`, if known.
    pub fn distance_to(&self, dest: NodeId) -> Option<Weight> {
        self.table.get(&dest).map(|e| e.dist)
    }

    /// Landmark entries currently in the table.
    pub fn landmark_entries(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.table.iter().filter(|(_, e)| e.dest_is_landmark)
    }

    /// Non-landmark entries currently in the table (the vicinity / cluster).
    pub fn local_entries(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.table
            .iter()
            .filter(move |(&d, e)| !e.dest_is_landmark && d != self.id)
    }

    /// The announcement describing this node's own (zero-length) route.
    fn self_announcement(&self) -> Announcement {
        Announcement {
            dest: self.id,
            dist: 0.0,
            path: vec![self.id],
            dest_is_landmark: self.is_landmark,
            dest_landmark_dist: self.own_landmark_dist,
        }
    }

    /// Whether an announcement for a non-landmark destination at distance
    /// `dist` (whose own closest-landmark distance is `dest_landmark_dist`)
    /// would currently be accepted, and which entry it would evict (for the
    /// vicinity cap).
    fn accepts_non_landmark(
        &self,
        dest: NodeId,
        dist: Weight,
        dest_landmark_dist: Weight,
    ) -> (bool, Option<NodeId>) {
        match self.limit {
            TableLimit::Unlimited => (true, None),
            // S4 cluster rule: keep w iff d(v, w) < d(w, ℓ_w).
            TableLimit::Cluster => (dist + 1e-12 < dest_landmark_dist, None),
            TableLimit::VicinityCap { size } => {
                let mut non_landmark: Vec<(NodeId, Weight)> = self
                    .table
                    .iter()
                    .filter(|(&d, e)| !e.dest_is_landmark && d != self.id && d != dest)
                    .map(|(&d, e)| (d, e.dist))
                    .collect();
                if non_landmark.len() < size {
                    return (true, None);
                }
                // Find the farthest current entry (ties by larger id so the
                // result is deterministic).
                non_landmark.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap()
                        .then_with(|| a.0.cmp(&b.0))
                });
                let &(worst_id, worst_dist) = non_landmark.last().unwrap();
                if dist < worst_dist || (dist == worst_dist && dest < worst_id) {
                    (true, Some(worst_id))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Process one incoming announcement; returns the announcements this
    /// node must propagate as a result (about the destination, and possibly
    /// about itself if its own landmark distance improved).
    ///
    /// Propagation fires only when the announcement strictly improved either
    /// the known distance to the destination or the destination's reported
    /// landmark distance (both monotonically decreasing), so the protocol
    /// terminates; and only for destinations the node accepts (or has just
    /// evicted, which acts as the update that lets downstream nodes evict
    /// too).
    fn process(&mut self, from: NodeId, link_weight: Weight, ann: &Announcement) -> Vec<Announcement> {
        let mut out = Vec::new();
        if ann.dest == self.id || ann.path.contains(&self.id) {
            return out; // loop prevention
        }
        let dist = ann.dist + link_weight;

        // Merge into control-plane knowledge; bail out if nothing improved.
        let (improved_dist, improved_dld) = match self.knowledge.get(&ann.dest) {
            None => (true, true),
            Some(k) => (
                dist + 1e-12 < k.dist,
                ann.dest_landmark_dist + 1e-12 < k.dest_landmark_dist,
            ),
        };
        if !improved_dist && !improved_dld {
            return out;
        }
        let mut new_path = vec![self.id];
        new_path.extend_from_slice(&ann.path);
        let merged = match self.knowledge.get(&ann.dest) {
            None => RouteEntry {
                dist,
                next_hop: from,
                path: new_path,
                dest_is_landmark: ann.dest_is_landmark,
                dest_landmark_dist: ann.dest_landmark_dist,
            },
            Some(k) => {
                let mut m = k.clone();
                if improved_dist {
                    m.dist = dist;
                    m.next_hop = from;
                    m.path = new_path;
                }
                if improved_dld {
                    m.dest_landmark_dist = ann.dest_landmark_dist;
                }
                m.dest_is_landmark |= ann.dest_is_landmark;
                m
            }
        };
        self.knowledge.insert(ann.dest, merged.clone());

        // Track our own closest-landmark distance; if it improved,
        // re-announce ourselves so nodes applying the cluster rule to *us*
        // can re-evaluate.
        if merged.dest_is_landmark && merged.dist + 1e-12 < self.own_landmark_dist {
            self.own_landmark_dist = merged.dist;
            if let Some(e) = self.table.get_mut(&self.id) {
                e.dest_landmark_dist = self.own_landmark_dist;
            }
            out.push(self.self_announcement());
        }

        // Decide data-plane acceptance for this destination with the merged
        // knowledge.
        let was_in_table = self.table.contains_key(&ann.dest);
        let accept = if merged.dest_is_landmark {
            true
        } else {
            let (ok, evict) =
                self.accepts_non_landmark(ann.dest, merged.dist, merged.dest_landmark_dist);
            if ok {
                if let Some(victim) = evict {
                    self.table.remove(&victim);
                }
            }
            ok
        };

        if accept {
            self.table.insert(ann.dest, merged.clone());
        } else if was_in_table {
            // A fresher landmark distance invalidated an accepted entry.
            self.table.remove(&ann.dest);
        }

        // Propagate when we use the route, or when we just evicted it (the
        // update doubles as the withdrawal that lets downstream re-check).
        if accept || was_in_table {
            out.push(Announcement {
                dest: ann.dest,
                dist: merged.dist,
                path: merged.path,
                dest_is_landmark: merged.dest_is_landmark,
                dest_landmark_dist: merged.dest_landmark_dist,
            });
        }
        out
    }

    /// Number of control-plane (knowledge) entries, excluding self.
    pub fn knowledge_size(&self) -> usize {
        self.knowledge.len().saturating_sub(usize::from(self.knowledge.contains_key(&self.id)))
    }
}

impl Protocol for PathVectorNode {
    type Message = Announcement;

    fn on_start(&mut self, ctx: &mut Context<'_, Announcement>) {
        // Install the self route.
        self.table.insert(
            self.id,
            RouteEntry {
                dist: 0.0,
                next_hop: self.id,
                path: vec![self.id],
                dest_is_landmark: self.is_landmark,
                dest_landmark_dist: self.own_landmark_dist,
            },
        );
        // Announce ourselves. Under the S4 cluster rule a non-landmark node
        // waits until it knows its own landmark distance (which `process`
        // re-announces as soon as the first landmark route arrives);
        // otherwise the initial announcement carries an infinite landmark
        // distance and would flood the whole network like plain path
        // vector, which is not how S4 behaves after its landmark phase.
        if self.is_landmark || !matches!(self.limit, TableLimit::Cluster) {
            let ann = self.self_announcement();
            let size = announcement_bytes(&ann);
            for nb in ctx.neighbors() {
                ctx.send_sized(nb, ann.clone(), size);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Announcement, ctx: &mut Context<'_, Announcement>) {
        let w = ctx
            .link_weight(from)
            .expect("messages only arrive from neighbors");
        let to_propagate = self.process(from, w, &msg);
        for ann in to_propagate {
            let size = announcement_bytes(&ann);
            for nb in ctx.neighbors() {
                ctx.send_sized(nb, ann.clone(), size);
            }
        }
    }
}

/// Wire size estimate for an announcement: destination id, distance, flags
/// plus 4 bytes per path element.
pub fn announcement_bytes(ann: &Announcement) -> usize {
    4 + 8 + 2 + 4 * ann.path.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoConfig;
    use crate::landmark::select_landmarks;
    use disco_graph::{dijkstra, generators, Graph};
    use disco_sim::Engine;

    fn run(
        g: &Graph,
        landmarks: &[NodeId],
        limit_for: impl Fn(NodeId) -> TableLimit,
    ) -> (Vec<PathVectorNode>, disco_sim::MessageStats) {
        let lm_set: std::collections::HashSet<NodeId> = landmarks.iter().copied().collect();
        let mut engine = Engine::new(g, |v| PathVectorNode::new(v, lm_set.contains(&v), limit_for(v)));
        let report = engine.run();
        assert!(report.converged, "path vector did not converge");
        (engine.nodes().to_vec(), report.stats)
    }

    #[test]
    fn unlimited_converges_to_shortest_paths() {
        let g = generators::gnm_connected(64, 256, 3);
        let landmarks = vec![NodeId(0)];
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::Unlimited);
        let truth = dijkstra(&g, NodeId(10));
        for v in g.nodes() {
            let got = nodes[v.0].distance_to(NodeId(10)).unwrap();
            let want = truth.distance(v).unwrap();
            assert!((got - want).abs() < 1e-9, "node {v}: {got} vs {want}");
            // Table holds every destination.
            assert_eq!(nodes[v.0].table_size(), 63);
        }
    }

    #[test]
    fn landmark_routes_always_learned() {
        let g = generators::gnm_connected(128, 512, 5);
        let cfg = DiscoConfig::seeded(5);
        let landmarks = select_landmarks(128, &cfg);
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::VicinityCap { size: 20 });
        for v in g.nodes() {
            for &lm in &landmarks {
                let got = nodes[v.0].distance_to(lm).unwrap();
                let want = dijkstra(&g, lm).distance(v).unwrap();
                assert!((got - want).abs() < 1e-9);
            }
            // Own landmark distance matches the closest landmark.
            let want_own = landmarks
                .iter()
                .map(|&lm| dijkstra(&g, lm).distance(v).unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!((nodes[v.0].own_landmark_distance() - want_own).abs() < 1e-9);
        }
    }

    #[test]
    fn vicinity_cap_limits_table_and_learns_closest() {
        let g = generators::gnm_connected(128, 512, 7);
        let cap = 15;
        let landmarks = vec![NodeId(3)];
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::VicinityCap { size: cap });
        let truth = dijkstra(&g, NodeId(40));
        // Node 40's non-landmark entries: exactly `cap` of them, and every
        // entry's distance is correct.
        let node = &nodes[40];
        let locals: Vec<_> = node.local_entries().collect();
        assert_eq!(locals.len(), cap);
        for (&d, e) in &locals {
            let want = truth.distance(d).unwrap();
            assert!((e.dist - want).abs() < 1e-9, "dest {d}");
        }
        // The farthest kept entry is not (much) farther than the true k-th
        // closest node. (Distributed eviction can differ on ties.)
        let mut true_dists: Vec<f64> = g
            .nodes()
            .filter(|&v| v != NodeId(40) && v != NodeId(3))
            .map(|v| truth.distance(v).unwrap())
            .collect();
        true_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let kth = true_dists[cap - 1];
        let worst_kept = locals
            .iter()
            .map(|(_, e)| e.dist)
            .fold(0.0f64, f64::max);
        assert!(worst_kept <= kth + 1e-9, "kept {worst_kept} vs true kth {kth}");
    }

    #[test]
    fn cluster_rule_matches_cluster_definition() {
        let g = generators::gnm_connected(96, 380, 9);
        let cfg = DiscoConfig::seeded(9);
        let landmarks = select_landmarks(96, &cfg);
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::Cluster);
        // Check against the static definition: w ∈ cluster(v) iff
        // d(v,w) < d(w, ℓ_w).
        let lm_trees: Vec<_> = landmarks.iter().map(|&lm| dijkstra(&g, lm)).collect();
        let closest_lm_dist = |w: NodeId| -> f64 {
            lm_trees
                .iter()
                .map(|t| t.distance(w).unwrap())
                .fold(f64::INFINITY, f64::min)
        };
        for v in g.nodes().step_by(7) {
            let tree = dijkstra(&g, v);
            for w in g.nodes() {
                if w == v || landmarks.contains(&w) {
                    continue;
                }
                let should_have = tree.distance(w).unwrap() < closest_lm_dist(w) - 1e-12;
                let has = nodes[v.0].table.contains_key(&w);
                assert_eq!(
                    has, should_have,
                    "cluster membership mismatch v={v} w={w} (have {has}, want {should_have})"
                );
            }
        }
    }

    #[test]
    fn messaging_scales_with_table_size() {
        // The bounded protocols must send far fewer messages than full path
        // vector on the same topology.
        let g = generators::gnm_connected(128, 512, 11);
        let cfg = DiscoConfig::seeded(11);
        let landmarks = select_landmarks(128, &cfg);
        let (_, full) = run(&g, &landmarks, |_| TableLimit::Unlimited);
        let (_, capped) = run(&g, &landmarks, |_| TableLimit::VicinityCap { size: 12 });
        assert!(
            capped.total_sent() * 2 < full.total_sent(),
            "capped {} vs full {}",
            capped.total_sent(),
            full.total_sent()
        );
    }

    #[test]
    fn announcement_size_grows_with_path() {
        let a = Announcement {
            dest: NodeId(1),
            dist: 1.0,
            path: vec![NodeId(0), NodeId(1)],
            dest_is_landmark: false,
            dest_landmark_dist: f64::INFINITY,
        };
        let mut b = a.clone();
        b.path.push(NodeId(2));
        assert!(announcement_bytes(&b) > announcement_bytes(&a));
    }
}
