//! The bounded path-vector protocol that learns landmark and vicinity
//! routes (paper §4.2, "Learning paths to landmarks and vicinities").
//!
//! "Nodes learn shortest paths to landmarks and vicinities via a single,
//! standard path vector routing protocol. When learning paths, a route
//! announcement is accepted into v's routing table if and only if the
//! route's destination is a landmark or one of the Θ(√(n log n)) closest
//! nodes currently advertised to v. The entire routing table is then
//! exported to v's neighbors."
//!
//! The same machinery, with a different acceptance rule, also implements
//! the protocols Disco is compared against:
//!
//! * [`TableLimit::Unlimited`] — classic path-vector / shortest-path
//!   routing (every destination accepted), the paper's `Path-vector` curve,
//! * [`TableLimit::VicinityCap`] — NDDisco / Disco's rule (landmarks plus
//!   the `k` closest destinations),
//! * [`TableLimit::Cluster`] — S4's rule (landmarks plus every destination
//!   closer to the node than to its own landmark), which is what breaks
//!   S4's per-node state bound.
//!
//! Each route announcement forwarded to one neighbor counts as one message;
//! the per-node totals until quiescence are the quantity plotted in the
//! paper's Fig. 8.
//!
//! ## Dynamics
//!
//! Since the dynamics subsystem landed, the node is a *repairing* path
//! vector: it keeps one candidate route per (neighbor, destination) — a
//! per-neighbor Adj-RIB-In, exactly like BGP — and its routing table is
//! always the deterministic best selection over those candidates filtered
//! through the table limit. Any change to the candidate set (a better
//! announcement, an explicit withdrawal, a neighbor link going down) makes
//! the node re-select and export the *difference*: fresh announcements for
//! routes that changed, withdrawals ([`Announcement::withdrawn`]) for
//! routes that disappeared. This is what lets routes heal after the engine
//! applies churn, failure or mobility events — the original seed
//! implementation propagated only monotone improvements and could never
//! un-learn a dead route.
//!
//! ## Forgetful routing (§4.2)
//!
//! The candidate store is the compact [`RibStore`]
//! (struct-of-arrays per-neighbor slabs — see [`crate::rib`]). On top of
//! it, [`PathVectorNode::set_forgetful_rib`] enables the paper's forgetful
//! eviction: for each destination only the *selected* route plus a bounded
//! alternate set is retained — destinations resident in the routing table
//! (landmarks and vicinity members) keep `alternates` failover candidates,
//! everything else keeps the selected route alone — cutting control state
//! from `Θ(δ·dests)` back to the paper's `Θ(√(n log n))` bound. When a
//! withdrawal (or link loss) forces a re-selection for a destination whose
//! alternates were forgotten, the node *re-solicits*: a route-refresh
//! request ([`Announcement::refresh`]) is batched onto the next export
//! flush and flooded to the neighbors, which answer with their current
//! route for that destination. Refreshes ride the same MRAI-style batch as
//! withdrawals, so repair cascades stay polynomial.

use crate::rib::{preferred_parts, Candidate, RibStats, RibStore, SelectedRoute};
use disco_graph::{FxHashMap, InternedPath, NodeId, Weight};
use disco_sim::{Context, Protocol};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Finite weight with a total order, usable as a BTreeSet key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdW(Weight);
impl Eq for OrdW {}
impl PartialOrd for OrdW {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdW {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("route weights are finite")
    }
}

/// Acceptance rule for destinations other than landmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TableLimit {
    /// Accept every destination (classic path vector).
    Unlimited,
    /// Accept landmarks plus at most `size` closest destinations
    /// (NDDisco / Disco vicinities).
    VicinityCap {
        /// Maximum number of non-landmark entries.
        size: usize,
    },
    /// Accept landmarks plus destinations closer to this node than to their
    /// own closest landmark (S4 clusters).
    Cluster,
}

/// One route announcement: "I can reach `dest` over `path` at cost `dist`"
/// — or, when `withdrawn` is set, "I no longer export a route to `dest`" —
/// or, when `refresh` is set, "please re-send me your current route to
/// `dest`" (forgetful routing's re-solicitation; the other fields are
/// ignored).
///
/// The path is interned ([`InternedPath`]): cloning an announcement for
/// each neighbor is a reference-count bump, not a `Vec` copy — the
/// dominant allocation of churn runs before interning landed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Announcement {
    /// The destination the route leads to.
    pub dest: NodeId,
    /// Distance from the announcing node to `dest`.
    pub dist: Weight,
    /// Path from the announcing node to `dest` (announcer first).
    pub path: InternedPath,
    /// Whether the destination is a landmark.
    pub dest_is_landmark: bool,
    /// The destination's current distance to its own closest landmark
    /// (`∞` until it has one); needed by the S4 cluster rule.
    pub dest_landmark_dist: Weight,
    /// Withdrawal flag: the announcer no longer exports a route to `dest`
    /// (the fields above describe the last exported route).
    pub withdrawn: bool,
    /// Route-refresh request (BGP route-refresh style): the sender
    /// forgot its alternates for `dest` and asks this neighbor to
    /// re-announce its current route. Answered with a unicast
    /// announcement; ignored by nodes with no route to `dest`.
    pub refresh: bool,
}

/// A converged routing-table entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Distance to the destination.
    pub dist: Weight,
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Full path (this node first, destination last), interned.
    pub path: InternedPath,
    /// Whether the destination is a landmark.
    pub dest_is_landmark: bool,
    /// Destination's distance to its own closest landmark (used by the
    /// cluster rule; `∞` if unknown).
    pub dest_landmark_dist: Weight,
}

/// Materialize a routing-table entry from the Loc-RIB view. This is the
/// *only* place a `RouteEntry` is built from the selection — the table
/// (the export/forwarding boundary) and nothing else; everywhere else the
/// selection is read in place through [`RibStore::selected_view`].
fn view_entry(v: &SelectedRoute<'_>) -> RouteEntry {
    RouteEntry {
        dist: v.dist,
        next_hop: v.next_hop,
        path: v.path.clone(),
        dest_is_landmark: v.dest_is_landmark,
        dest_landmark_dist: v.dest_landmark_dist,
    }
}

/// A path-vector node with a configurable acceptance rule.
#[derive(Debug, Clone)]
pub struct PathVectorNode {
    id: NodeId,
    is_landmark: bool,
    limit: TableLimit,
    /// Data-plane routing table: only destinations accepted by the table
    /// limit (plus the self entry). This is exactly what the node exports.
    /// Mutate only through [`Self::tbl_insert`] / [`Self::tbl_remove`],
    /// which keep the ordered mirrors below consistent.
    pub table: FxHashMap<NodeId, RouteEntry>,
    /// Per-neighbor candidate routes (Adj-RIB-In): the last usable route
    /// each neighbor announced for each destination, with `dist` already
    /// including the link weight and `path` starting at this node. Stored
    /// compactly ([`RibStore`]: per-neighbor SoA slabs over interned
    /// destination indexes) — candidate storage dominates control-plane
    /// memory, so every byte is multiplied by `degree × dests × n`.
    rib: RibStore,
    /// Forgetful routing (§4.2): when set, each destination retains only
    /// the selected route plus this many alternates (table-resident
    /// destinations only; everything else keeps the selected route alone).
    /// `None` = classic full Adj-RIB-In.
    forgetful: Option<usize>,
    /// Destinations whose forgotten alternates must be re-solicited from
    /// the neighbors on the next batch flush.
    pending_refresh: BTreeSet<NodeId>,
    /// Route-refresh requests sent / answered (repair-traffic gauges).
    refreshes_sent: u64,
    refreshes_answered: u64,
    /// The Loc-RIB is *not* stored here: it is the [`RibStore`]'s
    /// per-destination selection column (see [`RibStore::selected_view`]),
    /// maintained incrementally through [`Self::select_candidate`] /
    /// [`Self::rescan_best`] so a message costs O(degree), not O(all
    /// candidates). The former `best: FxHashMap<NodeId, RouteEntry>`
    /// duplicated ~56 B per known destination on top of the candidates.
    ///
    /// Ordered mirrors that turn the per-message O(table) / O(best) scans
    /// of cap admission into O(log) lookups — the difference between
    /// per-event cost growing with √n and staying flat. Keyed on compact
    /// 4-byte destination keys (`d.0 as u32`), *not* on interned RIB
    /// indexes: the `(dist, key)` order must equal the `(dist, NodeId)`
    /// order — distance ties are everywhere on unit-weight graphs and the
    /// tie-break decides cap admission — and intern order is arrival
    /// order, which would reorder ties and change converged tables.
    ///
    /// Non-landmark, non-self *table* entries by `(dist, key)`
    /// (max = the cap's eviction candidate).
    locals: BTreeSet<(OrdW, u32)>,
    /// Non-landmark *selected* routes not currently in the table, by
    /// `(dist, key)` (min = the cap's best waiting candidate).
    waiting: BTreeSet<(OrdW, u32)>,
    /// Landmark-flagged *selected* routes by `(dist, key)` (min = this
    /// node's own landmark distance).
    lm_best: BTreeSet<(OrdW, u32)>,
    /// Per-destination count of landmark-flagged candidates across all
    /// neighbors (incremental OR-merge of the landmark flag; absent = 0).
    cand_lm: FxHashMap<NodeId, u32>,
    /// Distance to this node's own closest landmark (0 for landmarks, `∞`
    /// while none is reachable); re-announced whenever it changes since the
    /// cluster rule keys on it.
    own_landmark_dist: Weight,
    /// Destinations whose exported state changed since the last flush
    /// (flushed by the batch timer, BGP-MRAI style — see `BATCH_TIMER`).
    /// An unordered set: per-change inserts are the hot side (every table
    /// admission/eviction under convergence), so membership is hashed and
    /// the deterministic export order is imposed once per flush by
    /// sorting into the reusable dump scratch.
    pending: disco_graph::FxHashSet<NodeId>,
    /// Bumped whenever a landmark-flagged table entry is added, removed or
    /// updated. Composite protocols watch this to notice that the landmark
    /// set (consistent-hashing ownership of resolution shards) or this
    /// node's own address (closest landmark + path) may have changed,
    /// without recomputing either per message.
    landmark_version: u64,
    /// Bumped whenever a selection column is (re)written — i.e. whenever
    /// this node's selected next hop for some destination may have moved.
    /// The engine samples it around upcalls to feed the repair-latency
    /// telemetry probe; it never influences protocol behavior.
    selection_revision: u64,
    /// Whether the landmark flag of a table entry follows the *selected*
    /// route (origin-authoritative, see
    /// [`Self::set_origin_landmark_flags`]) instead of the legacy OR-merge
    /// over all candidates. Off by default: only needed once landmarks can
    /// step down (dynamic `n`-estimation).
    origin_landmark_flags: bool,
    /// Whether a batch flush timer is armed.
    batch_armed: bool,
    /// Reusable scratch for [`Self::send_table_to`]: the sorted export
    /// order of the table's destinations, rebuilt in place per dump
    /// instead of allocating a fresh key vector for every new peer (a
    /// joiner with `k` links triggers `2k` full-table dumps).
    dump_scratch: Vec<NodeId>,
    /// Minimum interval between export floods. Batching is what keeps
    /// withdrawal cascades polynomial: without it, path hunting explores
    /// exponentially many stale alternatives one message at a time; with
    /// it, each node exports at most one coalesced update per destination
    /// per round, so a cascade dies within max-path-length rounds.
    pub batch_delay: f64,
}

/// Timer token used by the path-vector batch flush. Composite protocols
/// embedding a [`PathVectorNode`] must deliver timers with this token back
/// to [`Protocol::on_timer`] (see `DiscoProtocol::run_pv`).
pub const BATCH_TIMER: u64 = 0x7076_0001; // "pv"

impl PathVectorNode {
    /// Create the node. `is_landmark` is this node's own (locally decided)
    /// landmark status; `limit` is the acceptance rule.
    pub fn new(id: NodeId, is_landmark: bool, limit: TableLimit) -> Self {
        PathVectorNode {
            id,
            is_landmark,
            limit,
            table: FxHashMap::default(),
            rib: RibStore::new(),
            forgetful: None,
            pending_refresh: BTreeSet::new(),
            refreshes_sent: 0,
            refreshes_answered: 0,
            locals: BTreeSet::new(),
            waiting: BTreeSet::new(),
            lm_best: BTreeSet::new(),
            cand_lm: FxHashMap::default(),
            origin_landmark_flags: false,
            own_landmark_dist: if is_landmark { 0.0 } else { Weight::INFINITY },
            pending: disco_graph::FxHashSet::default(),
            landmark_version: 0,
            selection_revision: 0,
            batch_armed: false,
            dump_scratch: Vec::new(),
            batch_delay: 2.0,
        }
    }

    /// Version counter of this node's view of the landmark set (bumped when
    /// a landmark appears in or disappears from the table).
    pub fn landmark_version(&self) -> u64 {
        self.landmark_version
    }

    /// Monotone counter of selection-column writes (route selection
    /// changes); the engine's telemetry layer reads this through
    /// [`Protocol::control_revision`].
    pub fn selection_revision(&self) -> u64 {
        self.selection_revision
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node is a landmark.
    pub fn is_landmark(&self) -> bool {
        self.is_landmark
    }

    /// Distance to this node's closest landmark (∞ if none learned yet;
    /// 0 for landmarks).
    pub fn own_landmark_distance(&self) -> Weight {
        self.own_landmark_dist
    }

    /// Number of entries in the routing table (excluding the self entry).
    pub fn table_size(&self) -> usize {
        self.table.len().saturating_sub(1)
    }

    /// Converged distance to `dest`, if known.
    pub fn distance_to(&self, dest: NodeId) -> Option<Weight> {
        self.table.get(&dest).map(|e| e.dist)
    }

    /// Landmark entries currently in the table.
    pub fn landmark_entries(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.table.iter().filter(|(_, e)| e.dest_is_landmark)
    }

    /// Non-landmark entries currently in the table (the vicinity / cluster).
    pub fn local_entries(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.table
            .iter()
            .filter(move |(&d, e)| !e.dest_is_landmark && d != self.id)
    }

    /// Number of candidate routes held across all neighbors (control-plane
    /// memory, analogous to the old `knowledge` map).
    pub fn knowledge_size(&self) -> usize {
        self.rib.len()
    }

    /// Enable forgetful routing (§4.2) with the given per-destination
    /// alternate budget, or disable it with `None`. Takes effect for
    /// subsequent updates; already-held candidates are trimmed lazily as
    /// their destinations are touched.
    pub fn set_forgetful_rib(&mut self, alternates: Option<usize>) {
        self.forgetful = alternates;
    }

    /// The forgetful alternate budget, if forgetful routing is on.
    pub fn forgetful_rib(&self) -> Option<usize> {
        self.forgetful
    }

    /// Candidate-store gauge (per-node candidate count, path nodes and
    /// approximate bytes) for memory experiments.
    pub fn rib_stats(&self) -> RibStats {
        self.rib.stats()
    }

    /// Visit every destination this node currently serves a selected route
    /// for (the RIB's selection column, in interning order) — the
    /// forwarding-table compile sweep of [`crate::forward`].
    pub fn for_each_selected(&self, f: impl FnMut(NodeId, SelectedRoute<'_>)) {
        self.rib.for_each_selected(f)
    }

    /// Approximate heap bytes of this node's Loc-RIB *view*: the
    /// selection columns in the [`RibStore`] plus the ordered
    /// `locals`/`waiting`/`lm_best` mirrors (≈12 B keys in B-tree nodes
    /// that amortize to about twice the payload). This is the "loc-rib
    /// bytes" column of `exp_memory`'s per-component accounting — the
    /// state that used to be a materialized `FxHashMap<NodeId,
    /// RouteEntry>` per node.
    pub fn loc_rib_bytes(&self) -> usize {
        self.rib.selection_bytes() + self.mirror_entries() * 24
    }

    /// Entries across the three ordered mirrors (`locals` + `waiting` +
    /// `lm_best`), for the byte-model accounting: the pre-view layout kept
    /// the same mirrors at 16-byte `(dist, NodeId)` keys.
    pub fn mirror_entries(&self) -> usize {
        self.locals.len() + self.waiting.len() + self.lm_best.len()
    }

    /// Route-refresh requests this node has flooded (forgetful routing's
    /// re-solicitation traffic).
    pub fn refreshes_sent(&self) -> u64 {
        self.refreshes_sent
    }

    /// Route-refresh requests this node has answered.
    pub fn refreshes_answered(&self) -> u64 {
        self.refreshes_answered
    }

    /// Compact 4-byte mirror key for a destination (order-isomorphic to
    /// `NodeId` — see the mirror field docs).
    #[inline]
    fn dkey(d: NodeId) -> u32 {
        debug_assert_eq!(d.0 as u32 as usize, d.0, "node ids must fit u32");
        d.0 as u32
    }

    /// Insert a table entry, keeping the `locals` / `waiting` mirrors
    /// consistent. Returns the replaced entry, like `HashMap::insert`.
    fn tbl_insert(&mut self, d: NodeId, e: RouteEntry) -> Option<RouteEntry> {
        let is_local = d != self.id && !e.dest_is_landmark;
        let new_key = (OrdW(e.dist), Self::dkey(d));
        let old = self.table.insert(d, e);
        if let Some(o) = &old {
            if d != self.id && !o.dest_is_landmark {
                self.locals.remove(&(OrdW(o.dist), Self::dkey(d)));
            }
        }
        if is_local {
            self.locals.insert(new_key);
        }
        // A destination in the table is never waiting.
        if let Some((dist, flag)) = self.rib.selected_parts(d) {
            if !flag {
                self.waiting.remove(&(OrdW(dist), Self::dkey(d)));
            }
        }
        old
    }

    /// Remove a table entry, keeping the mirrors consistent.
    fn tbl_remove(&mut self, d: NodeId) -> Option<RouteEntry> {
        let old = self.table.remove(&d)?;
        if d != self.id && !old.dest_is_landmark {
            self.locals.remove(&(OrdW(old.dist), Self::dkey(d)));
        }
        // A non-landmark selected route no longer in the table waits for a
        // cap slot again.
        if let Some((dist, flag)) = self.rib.selected_parts(d) {
            if !flag {
                self.waiting.insert((OrdW(dist), Self::dkey(d)));
            }
        }
        Some(old)
    }

    /// Drop the current selection's mirror key (call before any mutation
    /// of the selection for `d`).
    fn unmirror_best(&mut self, d: NodeId) {
        if let Some(di) = self.rib.idx(d) {
            self.unmirror_best_at(d, di);
        }
    }

    /// [`Self::unmirror_best`] with the destination index in hand.
    fn unmirror_best_at(&mut self, d: NodeId, di: u32) {
        if let Some((dist, flag)) = self.rib.selected_parts_at(di) {
            let k = (OrdW(dist), Self::dkey(d));
            if flag {
                self.lm_best.remove(&k);
            } else {
                self.waiting.remove(&k);
            }
        }
    }

    /// Mirror the current selection for `d` (call after the selection
    /// mutation; a destination resident in the table is never `waiting`).
    fn mirror_best(&mut self, d: NodeId) {
        if let Some(di) = self.rib.idx(d) {
            self.mirror_best_at(d, di);
        }
    }

    /// [`Self::mirror_best`] with the destination index in hand.
    fn mirror_best_at(&mut self, d: NodeId, di: u32) {
        if let Some((dist, flag)) = self.rib.selected_parts_at(di) {
            let k = (OrdW(dist), Self::dkey(d));
            if flag {
                self.lm_best.insert(k);
            } else if !self.table.contains_key(&d) {
                self.waiting.insert(k);
            }
        }
    }

    /// Point the Loc-RIB selection at `nbr`'s candidate `cand` for `d`
    /// (the flag policy decides between the candidate's own flag and the
    /// OR-merge), keeping the mirrors consistent. `cand` is the candidate
    /// just recorded in `nbr`'s slab, so the selection columns are written
    /// straight from it — no slab re-probe.
    fn select_candidate(&mut self, d: NodeId, di: u32, nbr: NodeId, cand: Candidate) {
        self.selection_revision += 1;
        let flag = if self.origin_landmark_flags {
            cand.dest_is_landmark
        } else {
            self.cand_is_lm(d)
        };
        self.unmirror_best_at(d, di);
        self.rib.select_from_at(di, nbr, cand, flag);
        self.mirror_best_at(d, di);
    }

    /// Promote this node to a landmark at runtime (emergency self-election
    /// when connectivity to every landmark is lost under churn). Returns
    /// the announcements to flood.
    pub fn promote_to_landmark(&mut self) -> Vec<Announcement> {
        if self.is_landmark {
            return Vec::new();
        }
        self.is_landmark = true;
        self.own_landmark_dist = 0.0;
        let entry = self.self_entry();
        self.tbl_insert(self.id, entry);
        vec![Self::export(self.id, &self.table[&self.id], false)]
    }

    /// Make the landmark flag an attribute of the *selected* route: a
    /// table entry carries the flag its best candidate carries, exactly
    /// like the distance. Since every route to `d` is rooted at `d`'s own
    /// self-announcement, the origin's word — including a revocation —
    /// propagates along the export tree and converges like any other
    /// attribute. The legacy default instead OR-merges the flag over all
    /// candidates, which spreads a promotion faster but is *monotone*: a
    /// demotion could never propagate past one hop, because each node
    /// keeps its neighbors' stale flags alive. Enabled by the dynamic
    /// `n`-estimation mode, the only mode in which landmarks step down.
    pub fn set_origin_landmark_flags(&mut self, enabled: bool) {
        self.origin_landmark_flags = enabled;
    }

    /// Step down from landmark duty (the ×2 hysteresis re-election of §4.2
    /// decided against this node under a fresh estimate of `n`). The self
    /// entry is re-exported without the landmark flag on the next batch
    /// flush, which is what tells the rest of the network.
    pub fn demote_from_landmark(&mut self) {
        if !self.is_landmark {
            return;
        }
        self.is_landmark = false;
        // As a regular node, the own-landmark distance comes from the best
        // landmark route again.
        self.own_landmark_dist = self
            .lm_best
            .first()
            .map_or(Weight::INFINITY, |&(OrdW(w), _)| w);
        let e = self.self_entry();
        self.tbl_insert(self.id, e);
        self.pending.insert(self.id);
        self.landmark_version += 1;
    }

    /// Current table limit (vicinity capacity for Disco nodes).
    pub fn table_limit(&self) -> TableLimit {
        self.limit
    }

    /// Re-size the vicinity capacity to `size` (the live estimate of `n`
    /// changed). Shrinking evicts the farthest locals; growing admits the
    /// closest waiting candidates; every change is exported on the next
    /// flush. No-op unless the node runs [`TableLimit::VicinityCap`].
    pub fn set_vicinity_cap(&mut self, size: usize) {
        let TableLimit::VicinityCap { size: old } = self.limit else {
            return;
        };
        if old == size {
            return;
        }
        self.limit = TableLimit::VicinityCap { size };
        while self.locals.len() > size {
            let w = self.worst_local().expect("locals non-empty");
            self.tbl_remove(w);
            self.pending.insert(w);
        }
        while self.locals.len() < size {
            let Some(w) = self.best_waiting() else {
                break;
            };
            let e = self.waiting_entry(w);
            self.tbl_insert(w, e);
            self.pending.insert(w);
        }
    }

    /// This node's own (zero-length) route entry.
    fn self_entry(&self) -> RouteEntry {
        RouteEntry {
            dist: 0.0,
            next_hop: self.id,
            path: InternedPath::single(self.id),
            dest_is_landmark: self.is_landmark,
            dest_landmark_dist: self.own_landmark_dist,
        }
    }

    /// The announcement exporting table entry `e` for `dest`.
    fn export(dest: NodeId, e: &RouteEntry, withdrawn: bool) -> Announcement {
        Announcement {
            dest,
            dist: e.dist,
            path: e.path.clone(),
            dest_is_landmark: e.dest_is_landmark,
            dest_landmark_dist: e.dest_landmark_dist,
            withdrawn,
            refresh: false,
        }
    }

    /// Bump / drop the per-destination count of landmark-flagged
    /// candidates (the OR-merge of the landmark flag, maintained
    /// incrementally).
    fn cand_lm_adjust(&mut self, d: NodeId, was: bool, now: bool) {
        match (was, now) {
            (false, true) => *self.cand_lm.entry(d).or_insert(0) += 1,
            (true, false) => {
                let c = self.cand_lm.get_mut(&d).expect("flag counter underflow");
                *c -= 1;
                if *c == 0 {
                    self.cand_lm.remove(&d);
                }
            }
            _ => {}
        }
    }

    /// Whether any candidate for `d` carries the landmark flag.
    fn cand_is_lm(&self, d: NodeId) -> bool {
        self.cand_lm.contains_key(&d)
    }

    /// Record one incoming announcement in the candidate set; returns the
    /// destination whose candidates changed and the new candidate (`None`
    /// for a removal), so the selection step never re-probes the map.
    fn absorb(
        &mut self,
        from: NodeId,
        link_weight: Weight,
        ann: &Announcement,
    ) -> (NodeId, Option<Candidate>, Option<u32>) {
        let d = ann.dest;
        // The usable case first: not a withdrawal, not our own id, and we
        // are not already on the path (loop prevention) — in which case
        // the containment scan and the prepend share one arena pass.
        if !ann.withdrawn && d != self.id {
            if let Some(path) = ann.path.prepend_unless_contains(self.id) {
                let cand = Candidate {
                    dist: ann.dist + link_weight,
                    // Shares the announced path, prefixed with this node.
                    path,
                    dest_is_landmark: ann.dest_is_landmark,
                    dest_landmark_dist: ann.dest_landmark_dist,
                };
                let di = self.rib.intern(d);
                let was_lm = self.rib.insert_at(from, di, &cand) == Some(true);
                self.cand_lm_adjust(d, was_lm, ann.dest_is_landmark);
                return (d, Some(cand), Some(di));
            }
        }
        // Withdrawals and routes through this node make the neighbor
        // unusable for that destination.
        if self.rib.remove(from, d) == Some(true) {
            self.cand_lm_adjust(d, true, false);
        }
        // A removal can compact the interner, so no index survives this
        // branch; the (cold) caller path re-resolves.
        (d, None, None)
    }

    /// Recompute the Loc-RIB best route for `d` by scanning every
    /// neighbor's candidate — the slow path, needed only when the current
    /// best neighbor's own candidate worsened or disappeared. Selection is
    /// a pure function of the candidate set (the preference order is
    /// total), so equal-seed runs reselect identically.
    fn rescan_best(&mut self, d: NodeId) {
        self.selection_revision += 1;
        // Best candidate over neighbors, written straight into the
        // selection column (nothing materialized). The landmark flag is
        // OR-merged (via the incremental counter): it is intrinsic to the
        // destination, and candidates disagree only transiently while a
        // promotion floods.
        self.unmirror_best(d);
        if self.rib.select_best(d) && !self.origin_landmark_flags {
            let flag = self.cand_is_lm(d);
            self.rib.set_selected_flag(d, flag);
        }
        self.mirror_best(d);
    }

    /// Re-write the selection's landmark flag if the OR over candidates
    /// changed (the route itself is untouched). Under origin-authoritative
    /// flags this is a no-op: the flag belongs to the selected candidate,
    /// and a non-selected neighbor's word cannot change it.
    /// Returns whether the selection's flag actually changed.
    fn refresh_best_flag(&mut self, d: NodeId) -> bool {
        let di = self.rib.idx(d);
        self.refresh_best_flag_at(d, di)
    }

    /// [`Self::refresh_best_flag`] with the destination index in hand.
    fn refresh_best_flag_at(&mut self, d: NodeId, di: Option<u32>) -> bool {
        if self.origin_landmark_flags {
            return false;
        }
        let Some(di) = di else {
            return false;
        };
        let is_lm = self.cand_is_lm(d);
        if let Some((_, flag)) = self.rib.selected_parts_at(di) {
            if flag != is_lm {
                self.unmirror_best_at(d, di);
                self.rib.set_selected_flag(d, is_lm);
                self.mirror_best_at(d, di);
                return true;
            }
        }
        false
    }

    /// Update the Loc-RIB best route for `d` after the candidate from
    /// neighbor `from` changed (`removed` = the candidate disappeared),
    /// then re-derive table membership. Incremental: the full O(degree)
    /// rescan — a cache miss per neighbor on large tables — runs only when
    /// the previously-best neighbor's candidate worsened or vanished;
    /// every other case is O(1). The outcome is identical to rescanning:
    /// the preference order is total, so the minimum moves only when a
    /// better candidate arrives (it becomes the minimum) or the minimum
    /// itself degrades (rescan).
    fn update_dest(&mut self, d: NodeId, from: NodeId, new: Option<Candidate>, di: Option<u32>) {
        if d == self.id {
            return;
        }
        let cur_hop = match di {
            Some(i) => self.rib.selected_hop_at(i),
            None => self.rib.selected_hop(d),
        };
        if let Some(cand) = new {
            // An inserted candidate always has its index in hand.
            let di = di.expect("insertions carry the destination index");
            // Compare against the selection's *cached* route: when `from`
            // re-announced over its own selected candidate, the cache still
            // holds the pre-update values, exactly like the deleted `best`
            // map did.
            let promote = match self.rib.selected_view_at(di) {
                None => true,
                Some(cur) => preferred_parts(cand.dist, &cand.path, cur.dist, cur.path),
            };
            if promote {
                self.select_candidate(d, di, from, cand);
                self.apply_selection(d, Some(di));
                return;
            }
        }
        if cur_hop == Some(from) {
            // Re-selection can clear the last selection and compact the
            // interner; `di` is dead past this point.
            self.rescan_best(d);
            // The selected route vanished with no retained alternate left.
            // If the forgetful policy discarded candidates for this
            // destination, a full RIB might still hold a route — re-solicit
            // the neighbors (batched with the next flush, so refresh storms
            // coalesce like withdrawals). Only total loss triggers this:
            // mere worsening heals through the neighbors' ordinary change
            // exports, and refreshing on every degradation feeds back (the
            // answers themselves get evicted, re-arming the trigger) into
            // a refresh storm that never quiesces.
            if self.forgetful.is_some()
                && self.rib.selected_hop(d).is_none()
                && self.rib.take_evicted(d)
            {
                self.pending_refresh.insert(d);
            }
        } else {
            // The selected route is untouched; only the OR-merged landmark
            // flag can have changed. When it did not, the table derivation
            // is already at a fixed point — the selection, the limit and
            // the table are all exactly as the last `apply_selection` left
            // them — so re-deriving is pure overhead on the most common
            // message (a non-improving announcement from a non-selected
            // neighbor). Only the landmark-version bump `apply_selection`
            // makes for a still-pending landmark entry is replicated, so
            // the composite protocol's repair triggers fire identically.
            // On the withdrawal / neighbor-down path no index is in hand
            // (and any pre-removal index would be compaction-stale) —
            // resolve it here so the flag refresh actually runs.
            let di = di.or_else(|| self.rib.idx(d));
            if !self.refresh_best_flag_at(d, di) {
                if self.table.get(&d).is_some_and(|e| e.dest_is_landmark)
                    && self.pending.contains(&d)
                {
                    self.landmark_version += 1;
                }
                return;
            }
            self.apply_selection(d, di);
            return;
        }
        self.apply_selection(d, None);
    }

    /// Trim `d`'s candidate set to the forgetful budget (no-op unless
    /// [`Self::set_forgetful_rib`] enabled the policy): the selected route
    /// always survives; destinations resident in the table (landmarks and
    /// vicinity members, §4.2's exemption) keep `alternates` failover
    /// candidates on top, everything else keeps the selected route alone.
    fn enforce_forgetful(&mut self, d: NodeId) {
        let Some(alternates) = self.forgetful else {
            return;
        };
        if d == self.id {
            return;
        }
        let keep = if self.table.contains_key(&d) {
            1 + alternates
        } else {
            1
        };
        // The selected route (read from the selection column) is never
        // evicted, whatever its rank.
        let removed = self.rib.enforce(d, keep);
        if removed.is_empty() {
            return;
        }
        let mut lm_removed = false;
        for (_, was_lm) in removed {
            if was_lm {
                self.cand_lm_adjust(d, true, false);
                lm_removed = true;
            }
        }
        // Evicting the last landmark-flagged candidate can clear the
        // OR-merged flag; re-derive the entry so the table doesn't keep a
        // stale flag alive.
        if lm_removed && !self.origin_landmark_flags {
            self.refresh_best_flag(d);
            self.apply_selection(d, None);
        }
    }

    /// Whether a route with the given flag / distances qualifies for the
    /// table under the Cluster rule (landmarks always; others iff
    /// d(v, w) < d(w, ℓ_w)).
    fn cluster_accepts(is_landmark: bool, dist: Weight, lm_dist: Weight) -> bool {
        is_landmark || dist + 1e-12 < lm_dist
    }

    /// Vicinity ordering for cap admission: smaller distance first, ties by
    /// smaller id.
    fn cap_key(d: NodeId, dist: Weight) -> (Weight, NodeId) {
        (dist, d)
    }

    fn cap_less(a: (Weight, NodeId), b: (Weight, NodeId)) -> bool {
        a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)) == std::cmp::Ordering::Less
    }

    /// The best selected route not currently in the table (the cap's
    /// waiting list), if any. O(log) via the `waiting` mirror.
    fn best_waiting(&self) -> Option<NodeId> {
        self.waiting.first().map(|&(_, d)| NodeId(d as usize))
    }

    /// The worst non-landmark table entry (the cap's eviction candidate).
    /// O(log) via the `locals` mirror.
    fn worst_local(&self) -> Option<NodeId> {
        self.locals.last().map(|&(_, d)| NodeId(d as usize))
    }

    /// Materialize the selected route of the cap's waiting candidate `w`
    /// for table admission.
    fn waiting_entry(&self, w: NodeId) -> RouteEntry {
        view_entry(
            &self
                .rib
                .selected_view(w)
                .expect("a waiting destination has a selected route"),
        )
    }

    /// Number of non-landmark, non-self table entries. O(1).
    fn local_count(&self) -> usize {
        self.locals.len()
    }

    /// Re-derive the table membership of `d` after its best route changed,
    /// recording export changes in `pending`. Handles the single admission
    /// / eviction the change can cause under [`TableLimit::VicinityCap`],
    /// and keeps `own_landmark_dist` (exported on the self entry) current.
    fn apply_selection(&mut self, d: NodeId, di: Option<u32>) {
        let di = di.or_else(|| self.rib.idx(d));
        // Cap-reject fast path: the overwhelmingly common apply during
        // convergence at scale is "a non-landmark selected route for a
        // destination outside the table that does not beat the cap's
        // worst resident". That case is provably a no-op on the table,
        // the ordered mirrors, the landmark version and the exported
        // own-landmark distance (`desired` derives to `None`, the old
        // entry is `None`, and no landmark flag is involved) — bail
        // before the full re-derivation pays half a dozen hash probes
        // and a materialized-entry compare.
        let parts = di.and_then(|i| self.rib.selected_parts_at(i));
        if let TableLimit::VicinityCap { size } = self.limit {
            if let Some((dist, flag)) = parts {
                if !flag && self.locals.len() >= size && !self.table.contains_key(&d) {
                    if let Some(&(OrdW(wd), wkey)) = self.locals.last() {
                        if !Self::cap_less(Self::cap_key(d, dist), (wd, NodeId(wkey as usize))) {
                            return;
                        }
                    }
                }
            }
        }
        let was_landmark_entry = self.table.get(&d).is_some_and(|e| e.dest_is_landmark);
        let best_is_landmark = parts.is_some_and(|(_, f)| f);
        let view = di.and_then(|i| self.rib.selected_view_at(i));
        let desired: Option<RouteEntry> = match (view, self.limit) {
            (None, _) => None,
            (Some(v), TableLimit::Unlimited) => Some(view_entry(&v)),
            (Some(v), TableLimit::Cluster) => {
                Self::cluster_accepts(v.dest_is_landmark, v.dist, v.dest_landmark_dist)
                    .then(|| view_entry(&v))
            }
            (Some(v), TableLimit::VicinityCap { size }) => {
                if v.dest_is_landmark {
                    Some(view_entry(&v))
                } else if self.table.contains_key(&d) && !was_landmark_entry {
                    // Already a local: keep unless the update worsened it
                    // below the best waiting candidate (checked after the
                    // entry is updated, below).
                    Some(view_entry(&v))
                } else {
                    // Admission test against the cap.
                    let fits = self.local_count() < size;
                    let beats_worst = self.worst_local().is_some_and(|w| {
                        Self::cap_less(
                            Self::cap_key(d, v.dist),
                            Self::cap_key(w, self.table[&w].dist),
                        )
                    });
                    (fits || beats_worst).then(|| view_entry(&v))
                }
            }
        };

        let landmark_involved = was_landmark_entry
            || desired.as_ref().is_some_and(|e| e.dest_is_landmark)
            || best_is_landmark;

        match desired {
            None => {
                if let Some(old) = self.tbl_remove(d) {
                    self.pending.insert(d);
                    // A freed cap slot admits the best waiting candidate.
                    if matches!(self.limit, TableLimit::VicinityCap { .. }) && !old.dest_is_landmark
                    {
                        if let Some(w) = self.best_waiting() {
                            let e = self.waiting_entry(w);
                            self.pending.insert(w);
                            self.tbl_insert(w, e);
                        }
                    }
                }
            }
            Some(entry) => {
                let changed = self.table.get(&d) != Some(&entry);
                if changed {
                    self.pending.insert(d);
                    let is_landmark_entry = entry.dest_is_landmark;
                    let evicted_slot = self.tbl_insert(d, entry);
                    if let TableLimit::VicinityCap { size } = self.limit {
                        if !is_landmark_entry {
                            if self.local_count() > size {
                                // Admission pushed the cap over: evict the
                                // worst local (possibly d itself on a tie).
                                if let Some(w) = self.worst_local() {
                                    self.tbl_remove(w);
                                    self.pending.insert(w);
                                }
                            } else if evicted_slot.is_some() {
                                // d's route worsened in place: the best
                                // waiting candidate may now beat it.
                                if let Some(w) = self.best_waiting() {
                                    let wd = self
                                        .rib
                                        .selected_parts(w)
                                        .expect("waiting dest has a selection")
                                        .0;
                                    let wk = Self::cap_key(w, wd);
                                    let dk = Self::cap_key(d, self.table[&d].dist);
                                    if Self::cap_less(wk, dk) {
                                        self.tbl_remove(d);
                                        let e = self.waiting_entry(w);
                                        self.pending.insert(w);
                                        self.tbl_insert(w, e);
                                    }
                                }
                            }
                        } else if evicted_slot.is_some_and(|p| !p.dest_is_landmark) {
                            // A local was re-classified as a landmark,
                            // freeing a cap slot.
                            if let Some(w) = self.best_waiting() {
                                let e = self.waiting_entry(w);
                                self.pending.insert(w);
                                self.tbl_insert(w, e);
                            }
                        }
                    }
                }
            }
        }

        // Track changes to landmark routes: membership changes reshuffle
        // consistent-hashing ownership, and any landmark-entry update can
        // move this node's own address. `pending` membership approximates
        // "d's export changed" (it can linger from an earlier un-flushed
        // change; the occasional spurious bump only costs a debounced
        // repair pass).
        let is_landmark_entry = self.table.get(&d).is_some_and(|e| e.dest_is_landmark);
        if is_landmark_entry != was_landmark_entry
            || (is_landmark_entry && self.pending.contains(&d))
        {
            self.landmark_version += 1;
        }

        // Keep the exported own-landmark distance current; the cluster rule
        // at *other* nodes keys on it. O(log) via the `lm_best` mirror
        // instead of a scan over every best candidate.
        if landmark_involved && !self.is_landmark {
            let new_old = self
                .lm_best
                .first()
                .map_or(Weight::INFINITY, |&(OrdW(w), _)| w);
            if new_old != self.own_landmark_dist {
                self.own_landmark_dist = new_old;
                if self.table.contains_key(&self.id) {
                    // (Absent only before on_start: nothing exported yet.)
                    let e = self.self_entry();
                    self.tbl_insert(self.id, e);
                    self.pending.insert(self.id);
                }
            }
        }
    }

    /// Arm the batch flush for table changes queued by out-of-band
    /// mutations ([`Self::set_vicinity_cap`], [`Self::demote_from_landmark`])
    /// — without this, changes made outside a protocol upcall would sit in
    /// `pending` until some unrelated message happened to arm the batch.
    pub fn export_pending(&mut self, ctx: &mut Context<'_, Announcement>) {
        self.arm_batch(ctx);
    }

    /// Arm the batch flush timer if there are unexported changes or
    /// pending route-refresh requests.
    fn arm_batch(&mut self, ctx: &mut Context<'_, Announcement>) {
        if (!self.pending.is_empty() || !self.pending_refresh.is_empty()) && !self.batch_armed {
            self.batch_armed = true;
            ctx.set_timer(self.batch_delay, BATCH_TIMER);
        }
    }

    /// Export the coalesced state of every pending destination to all
    /// neighbors: the current table entry, or a withdrawal if the
    /// destination dropped out of the table since the last flush. Each
    /// destination is one [`disco_sim::context::Action::Flood`]: the
    /// engine performs the neighbor walk (one refcount bump per edge)
    /// instead of this node resolving the same adjacency `degree` times
    /// per announcement.
    fn flush(&mut self, ctx: &mut Context<'_, Announcement>) {
        self.batch_armed = false;
        self.dump_scratch.clear();
        self.dump_scratch.extend(self.pending.drain());
        self.dump_scratch.sort_unstable();
        let pending = std::mem::take(&mut self.dump_scratch);
        for &d in &pending {
            let ann = match self.table.get(&d) {
                Some(e) => Self::export(d, e, false),
                None => Announcement {
                    dest: d,
                    dist: Weight::INFINITY,
                    path: InternedPath::from_slice(&[self.id, d]),
                    dest_is_landmark: false,
                    dest_landmark_dist: Weight::INFINITY,
                    withdrawn: true,
                    refresh: false,
                },
            };
            Self::flood(&ann, ctx);
        }
        self.dump_scratch = pending;
        // Re-solicit forgotten alternates (forgetful routing): one
        // refresh request per destination, flooded to all neighbors.
        let refresh = std::mem::take(&mut self.pending_refresh);
        for d in refresh {
            self.refreshes_sent += 1;
            let ann = Announcement {
                dest: d,
                dist: Weight::INFINITY,
                path: InternedPath::from_slice(&[self.id, d]),
                dest_is_landmark: false,
                dest_landmark_dist: Weight::INFINITY,
                withdrawn: false,
                refresh: true,
            };
            Self::flood(&ann, ctx);
        }
    }

    /// Send this node's entire table (the paper's "the entire routing table
    /// is then exported") to one neighbor, in deterministic order, as a
    /// single batched delivery: one queue entry for the whole dump instead
    /// of one per announcement, with identical per-announcement processing
    /// order and statistics. The sort order is rebuilt in a reusable
    /// scratch vector.
    fn send_table_to(&mut self, peer: NodeId, ctx: &mut Context<'_, Announcement>) {
        self.dump_scratch.clear();
        self.dump_scratch.extend(self.table.keys().copied());
        self.dump_scratch.sort_unstable();
        let mut batch = Vec::with_capacity(self.dump_scratch.len());
        for &d in &self.dump_scratch {
            let ann = Self::export(d, &self.table[&d], false);
            let size = announcement_bytes(&ann);
            batch.push((ann, size));
        }
        ctx.send_batch(peer, batch);
    }

    /// Flood `ann` to every neighbor: one engine-expanded action, no
    /// neighbor list allocation and no per-neighbor adjacency scans.
    fn flood(ann: &Announcement, ctx: &mut Context<'_, Announcement>) {
        let size = announcement_bytes(ann);
        ctx.flood_sized(ann.clone(), size);
    }
}

impl Protocol for PathVectorNode {
    type Message = Announcement;

    fn classify(msg: &Announcement) -> disco_sim::MessageClass {
        if msg.withdrawn {
            disco_sim::MessageClass::Withdraw
        } else if msg.refresh {
            disco_sim::MessageClass::Refresh
        } else {
            disco_sim::MessageClass::Deliver
        }
    }

    fn control_revision(&self) -> u64 {
        self.selection_revision
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Announcement>) {
        // Install the self route.
        let e = self.self_entry();
        self.tbl_insert(self.id, e);
        // Announce ourselves. Under the S4 cluster rule a non-landmark node
        // waits until it knows its own landmark distance (the reselection
        // re-announces the self entry as soon as the first landmark route
        // arrives); otherwise the initial announcement carries an infinite
        // landmark distance and would flood the whole network like plain
        // path vector, which is not how S4 behaves after its landmark phase.
        if self.is_landmark || !matches!(self.limit, TableLimit::Cluster) {
            let ann = Self::export(self.id, &self.table[&self.id], false);
            Self::flood(&ann, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Announcement, ctx: &mut Context<'_, Announcement>) {
        let Some(w) = ctx.link_weight(from) else {
            return; // link died between send and delivery
        };
        if msg.refresh {
            // Route-refresh request: answer with the current export state
            // for that destination, unicast to the requester (over the
            // already-resolved arrival link). Nothing to say if we hold no
            // route (the requester's slot for us is already empty).
            if let Some(e) = self.table.get(&msg.dest) {
                self.refreshes_answered += 1;
                let ann = Self::export(msg.dest, e, false);
                let size = announcement_bytes(&ann);
                match ctx.via() {
                    Some(via) if via.node == from => ctx.send_resolved(via, ann, size),
                    _ => ctx.send_sized(from, ann, size),
                }
            }
            return;
        }
        let (d, removed, di) = self.absorb(from, w, &msg);
        self.update_dest(d, from, removed, di);
        self.enforce_forgetful(d);
        self.arm_batch(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Announcement>) {
        if token == BATCH_TIMER {
            self.flush(ctx);
        }
    }

    fn on_neighbor_up(&mut self, peer: NodeId, ctx: &mut Context<'_, Announcement>) {
        // Full exchange over the new link: the peer does the same, so both
        // sides learn everything the other exports. (Under the cluster rule
        // the self entry still carries our current landmark distance, which
        // is what the peer needs to apply S4's test.)
        self.send_table_to(peer, ctx);
    }

    fn on_neighbor_down(&mut self, peer: NodeId, ctx: &mut Context<'_, Announcement>) {
        // Every candidate learned from that neighbor is gone; re-derive each
        // affected destination (already sorted by destination id —
        // deterministic order) and let the difference (withdrawals
        // included) propagate on the next flush.
        let lost = self.rib.remove_neighbor(peer);
        if lost.is_empty() {
            return;
        }
        for (d, was_lm) in lost {
            if was_lm {
                self.cand_lm_adjust(d, true, false);
            }
            self.update_dest(d, peer, None, None);
        }
        self.arm_batch(ctx);
    }
}

/// Wire size estimate for an announcement: destination id, distance, flags
/// (landmark + withdrawn) plus 4 bytes per path element.
pub fn announcement_bytes(ann: &Announcement) -> usize {
    4 + 8 + 2 + 4 * ann.path.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoConfig;
    use crate::landmark::select_landmarks;
    use disco_graph::{dijkstra, generators, Graph, NodeId};
    use disco_sim::{Engine, TopologyEvent};

    fn run(
        g: &Graph,
        landmarks: &[NodeId],
        limit_for: impl Fn(NodeId) -> TableLimit,
    ) -> (Vec<PathVectorNode>, disco_sim::MessageStats) {
        let lm_set = crate::landmark::landmark_set(landmarks);
        let mut engine = Engine::new(g, |v| {
            PathVectorNode::new(v, lm_set.contains(&v), limit_for(v))
        });
        let report = engine.run();
        assert!(report.converged, "path vector did not converge");
        (engine.nodes().to_vec(), report.stats)
    }

    #[test]
    fn unlimited_converges_to_shortest_paths() {
        let g = generators::gnm_connected(64, 256, 3);
        let landmarks = vec![NodeId(0)];
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::Unlimited);
        let truth = dijkstra(&g, NodeId(10));
        for v in g.nodes() {
            let got = nodes[v.0].distance_to(NodeId(10)).unwrap();
            let want = truth.distance(v).unwrap();
            assert!((got - want).abs() < 1e-9, "node {v}: {got} vs {want}");
            // Table holds every destination.
            assert_eq!(nodes[v.0].table_size(), 63);
        }
    }

    #[test]
    fn landmark_routes_always_learned() {
        let g = generators::gnm_connected(128, 512, 5);
        let cfg = DiscoConfig::seeded(5);
        let landmarks = select_landmarks(128, &cfg);
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::VicinityCap { size: 20 });
        let lm_trees: Vec<_> = landmarks.iter().map(|&lm| dijkstra(&g, lm)).collect();
        for v in g.nodes() {
            for (i, &lm) in landmarks.iter().enumerate() {
                let got = nodes[v.0].distance_to(lm).unwrap();
                let want = lm_trees[i].distance(v).unwrap();
                assert!((got - want).abs() < 1e-9);
            }
            // Own landmark distance matches the closest landmark.
            let want_own = lm_trees
                .iter()
                .map(|t| t.distance(v).unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!((nodes[v.0].own_landmark_distance() - want_own).abs() < 1e-9);
        }
    }

    #[test]
    fn vicinity_cap_limits_table_and_learns_closest() {
        let g = generators::gnm_connected(128, 512, 7);
        let cap = 15;
        let landmarks = vec![NodeId(3)];
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::VicinityCap { size: cap });
        let truth = dijkstra(&g, NodeId(40));
        // Node 40's non-landmark entries: exactly `cap` of them, and every
        // entry's distance is correct.
        let node = &nodes[40];
        let locals: Vec<_> = node.local_entries().collect();
        assert_eq!(locals.len(), cap);
        for (&d, e) in &locals {
            let want = truth.distance(d).unwrap();
            assert!((e.dist - want).abs() < 1e-9, "dest {d}");
        }
        // The farthest kept entry is not (much) farther than the true k-th
        // closest node. (Distributed eviction can differ on ties.)
        let mut true_dists: Vec<f64> = g
            .nodes()
            .filter(|&v| v != NodeId(40) && v != NodeId(3))
            .map(|v| truth.distance(v).unwrap())
            .collect();
        true_dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let kth = true_dists[cap - 1];
        let worst_kept = locals.iter().map(|(_, e)| e.dist).fold(0.0f64, f64::max);
        assert!(
            worst_kept <= kth + 1e-9,
            "kept {worst_kept} vs true kth {kth}"
        );
    }

    #[test]
    fn cluster_rule_matches_cluster_definition() {
        let g = generators::gnm_connected(96, 380, 9);
        let cfg = DiscoConfig::seeded(9);
        let landmarks = select_landmarks(96, &cfg);
        let (nodes, _) = run(&g, &landmarks, |_| TableLimit::Cluster);
        // Check against the static definition: w ∈ cluster(v) iff
        // d(v,w) < d(w, ℓ_w).
        let lm_trees: Vec<_> = landmarks.iter().map(|&lm| dijkstra(&g, lm)).collect();
        let closest_lm_dist = |w: NodeId| -> f64 {
            lm_trees
                .iter()
                .map(|t| t.distance(w).unwrap())
                .fold(f64::INFINITY, f64::min)
        };
        for v in g.nodes().step_by(7) {
            let tree = dijkstra(&g, v);
            for w in g.nodes() {
                if w == v || landmarks.contains(&w) {
                    continue;
                }
                let should_have = tree.distance(w).unwrap() < closest_lm_dist(w) - 1e-12;
                let has = nodes[v.0].table.contains_key(&w);
                assert_eq!(
                    has, should_have,
                    "cluster membership mismatch v={v} w={w} (have {has}, want {should_have})"
                );
            }
        }
    }

    #[test]
    fn messaging_scales_with_table_size() {
        // The bounded protocols must send far fewer messages than full path
        // vector on the same topology.
        let g = generators::gnm_connected(128, 512, 11);
        let cfg = DiscoConfig::seeded(11);
        let landmarks = select_landmarks(128, &cfg);
        let (_, full) = run(&g, &landmarks, |_| TableLimit::Unlimited);
        let (_, capped) = run(&g, &landmarks, |_| TableLimit::VicinityCap { size: 12 });
        assert!(
            capped.total_sent() * 2 < full.total_sent(),
            "capped {} vs full {}",
            capped.total_sent(),
            full.total_sent()
        );
    }

    #[test]
    fn announcement_size_grows_with_path() {
        let a = Announcement {
            dest: NodeId(1),
            dist: 1.0,
            path: InternedPath::from_slice(&[NodeId(0), NodeId(1)]),
            dest_is_landmark: false,
            dest_landmark_dist: f64::INFINITY,
            withdrawn: false,
            refresh: false,
        };
        let mut b = a.clone();
        b.path = InternedPath::from_slice(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(announcement_bytes(&b) > announcement_bytes(&a));
    }

    // ---- dynamics: repair behavior ----

    /// Run to quiescence, apply `events` at staggered times, run to
    /// quiescence again; return the engine.
    fn run_with_events<'g>(
        g: &'g Graph,
        landmarks: &[NodeId],
        limit: TableLimit,
        events: Vec<TopologyEvent>,
    ) -> Engine<'g, PathVectorNode> {
        let lm_set = crate::landmark::landmark_set(landmarks);
        let mut engine = Engine::new(g, move |v| {
            PathVectorNode::new(v, lm_set.contains(&v), limit)
        });
        let report = engine.run();
        assert!(report.converged, "initial convergence failed");
        let t0 = engine.now() + 10.0;
        for (i, ev) in events.into_iter().enumerate() {
            engine.schedule_topology(t0 + i as f64, ev);
        }
        let converged = engine.run_until(|_| false);
        assert!(converged, "repair did not quiesce");
        engine
    }

    #[test]
    fn link_failure_reroutes_to_alternate_path() {
        // Square 0-1-2-3-0: cutting 0-1 forces 0→1 traffic the long way.
        let g = generators::ring(4);
        let engine = run_with_events(
            &g,
            &[NodeId(0)],
            TableLimit::Unlimited,
            vec![TopologyEvent::LinkDown {
                u: NodeId(0),
                v: NodeId(1),
            }],
        );
        let e = engine.nodes()[0]
            .table
            .get(&NodeId(1))
            .expect("repaired route");
        assert_eq!(
            e.path.to_vec(),
            vec![NodeId(0), NodeId(3), NodeId(2), NodeId(1)]
        );
        assert!((e.dist - 3.0).abs() < 1e-9);
        // And the reverse direction healed too.
        let r = engine.nodes()[1]
            .table
            .get(&NodeId(0))
            .expect("reverse route");
        assert!((r.dist - 3.0).abs() < 1e-9);
    }

    #[test]
    fn node_leave_withdraws_routes_everywhere() {
        let g = generators::gnm_connected(48, 144, 13);
        let victim = NodeId(17);
        let engine = run_with_events(
            &g,
            &[NodeId(0)],
            TableLimit::Unlimited,
            vec![TopologyEvent::NodeLeave { node: victim }],
        );
        // After the withdrawal cascade no live node still routes to or
        // through the departed node.
        for v in g.nodes() {
            if v == victim || !engine.is_active(v) {
                continue;
            }
            let node = &engine.nodes()[v.0];
            assert!(
                !node.table.contains_key(&victim),
                "{v} still has a table entry for departed {victim}"
            );
            for (d, e) in &node.table {
                assert!(
                    !e.path.contains(victim),
                    "{v}'s route to {d} still goes through departed {victim}"
                );
            }
        }
    }

    #[test]
    fn routes_track_current_graph_after_churn() {
        // After a batch of failures and recoveries, every table distance
        // must equal the true shortest path on the *current* graph.
        let g = generators::gnm_connected(40, 160, 21);
        let engine = run_with_events(
            &g,
            &[NodeId(0)],
            TableLimit::Unlimited,
            vec![
                TopologyEvent::LinkDown {
                    u: NodeId(0),
                    v: g.neighbors(NodeId(0))[0].node,
                },
                TopologyEvent::NodeLeave { node: NodeId(30) },
                TopologyEvent::LinkDown {
                    u: NodeId(5),
                    v: g.neighbors(NodeId(5))[0].node,
                },
                TopologyEvent::NodeJoin {
                    node: NodeId(30),
                    links: vec![(NodeId(1), 1.0), (NodeId(2), 1.0)],
                },
            ],
        );
        let current = engine.graph();
        for v in [NodeId(0), NodeId(5), NodeId(30), NodeId(39)] {
            let truth = dijkstra(current, v);
            let node = &engine.nodes()[v.0];
            for (d, e) in &node.table {
                let want = truth.distance(*d).expect("reachable");
                assert!(
                    (e.dist - want).abs() < 1e-9,
                    "{v}→{d}: table {} vs dijkstra {want}",
                    e.dist
                );
            }
            // Unlimited tables must cover every reachable destination.
            let reachable = current
                .nodes()
                .filter(|&w| engine.is_active(w) && truth.distance(w).is_some())
                .count();
            assert_eq!(node.table.len(), reachable, "{v} table incomplete");
        }
    }

    #[test]
    fn joining_node_learns_vicinity_and_landmarks() {
        let g = generators::gnm_connected(64, 256, 31);
        let cfg = DiscoConfig::seeded(31);
        let landmarks = select_landmarks(64, &cfg);
        let joiner = NodeId(64);
        let engine = run_with_events(
            &g,
            &landmarks,
            TableLimit::VicinityCap { size: 12 },
            vec![TopologyEvent::NodeJoin {
                node: joiner,
                links: vec![(NodeId(3), 1.0), (NodeId(9), 1.0)],
            }],
        );
        let node = &engine.nodes()[joiner.0];
        // The joiner learned a route to every landmark…
        for &lm in &landmarks {
            let got = node.distance_to(lm).expect("landmark route");
            let want = dijkstra(engine.graph(), joiner).distance(lm).unwrap();
            assert!((got - want).abs() < 1e-9);
        }
        // …and filled its vicinity cap with correct distances.
        let truth = dijkstra(engine.graph(), joiner);
        let locals: Vec<_> = node.local_entries().collect();
        assert_eq!(locals.len(), 12);
        for (&d, e) in locals {
            assert!((e.dist - truth.distance(d).unwrap()).abs() < 1e-9);
        }
        // Existing nodes adopted the joiner into nearby vicinities.
        let have_joiner = g
            .nodes()
            .filter(|v| engine.nodes()[v.0].table.contains_key(&joiner))
            .count();
        assert!(have_joiner > 0, "no vicinity adopted the joiner");
    }

    #[test]
    fn vicinity_cap_resize_evicts_and_admits() {
        let g = generators::gnm_connected(64, 256, 17);
        let (mut nodes, _) = run(&g, &[NodeId(0)], |_| TableLimit::VicinityCap { size: 20 });
        let node = &mut nodes[10];
        assert_eq!(node.local_entries().count(), 20);
        let mut before: Vec<(f64, NodeId)> =
            node.local_entries().map(|(&d, e)| (e.dist, d)).collect();
        before.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));

        node.set_vicinity_cap(8);
        assert_eq!(node.table_limit(), TableLimit::VicinityCap { size: 8 });
        let mut kept: Vec<(f64, NodeId)> =
            node.local_entries().map(|(&d, e)| (e.dist, d)).collect();
        kept.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(kept, before[..8], "shrink must keep the closest locals");

        // Growing re-admits from the retained candidate set.
        node.set_vicinity_cap(20);
        assert_eq!(node.local_entries().count(), 20);
        let mut back: Vec<(f64, NodeId)> =
            node.local_entries().map(|(&d, e)| (e.dist, d)).collect();
        back.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(back, before);
    }

    #[test]
    fn demotion_clears_landmark_flag_and_reexports() {
        let g = generators::ring(6);
        let lm = NodeId(2);
        let (mut nodes, _) = run(&g, &[lm], |_| TableLimit::Unlimited);
        assert!(nodes[2].is_landmark());
        nodes[2].demote_from_landmark();
        assert!(!nodes[2].is_landmark());
        // The self entry is queued for re-export without the flag, and the
        // own-landmark distance is no longer 0 (no other landmark exists).
        assert!(!nodes[2].table[&lm].dest_is_landmark);
        assert!(nodes[2].own_landmark_distance().is_infinite());
    }

    // ---- forgetful routing (§4.2) ----

    /// Forgetful eviction must not change what converges into the routing
    /// table — only how many candidates back it up.
    #[test]
    fn forgetful_converges_to_identical_tables_with_fewer_candidates() {
        let g = generators::gnm_connected(96, 384, 19);
        let cfg = DiscoConfig::seeded(19);
        let landmarks = select_landmarks(96, &cfg);
        let lm_set = crate::landmark::landmark_set(&landmarks);
        let run = |alternates: Option<usize>| {
            let mut engine = Engine::new(&g, |v| {
                let mut pv = PathVectorNode::new(
                    v,
                    lm_set.contains(&v),
                    TableLimit::VicinityCap { size: 15 },
                );
                pv.set_forgetful_rib(alternates);
                pv
            });
            assert!(engine.run().converged);
            engine.nodes().to_vec()
        };
        let full = run(None);
        let forgetful = run(Some(1));
        let (mut full_cands, mut slim_cands) = (0usize, 0usize);
        for v in g.nodes() {
            let (a, b) = (&full[v.0], &forgetful[v.0]);
            assert_eq!(a.table.len(), b.table.len(), "table size differs at {v}");
            for (d, e) in &a.table {
                let f = b.table.get(d).expect("same destinations");
                assert_eq!(e, f, "{v}→{d} entry differs");
            }
            full_cands += a.knowledge_size();
            slim_cands += b.knowledge_size();
        }
        assert!(
            slim_cands * 3 < full_cands * 2,
            "forgetful kept {slim_cands} of {full_cands} candidates (expected < 2/3)"
        );
        // The policy respects its budget: at most selected + 1 alternate
        // per table-resident destination, selected alone for the rest (of
        // which there are at most n).
        for v in g.nodes() {
            let node = &forgetful[v.0];
            assert!(
                node.rib_stats().candidates <= node.table.len() * 2 + 96,
                "{v} over budget"
            );
        }
    }

    /// Re-solicitation: after the only retained candidate dies with the
    /// link, a route-refresh request recovers the (previously evicted)
    /// alternate route.
    #[test]
    fn forgetful_refresh_recovers_evicted_alternate() {
        let g = generators::ring(4); // 0-1-2-3-0
        let mut engine = Engine::new(&g, |v| {
            let mut pv = PathVectorNode::new(v, v == NodeId(0), TableLimit::Unlimited);
            pv.set_forgetful_rib(Some(0)); // selected route only
            pv
        });
        assert!(engine.run().converged);
        // Node 0 kept only the direct candidate for dest 1; the alternate
        // through 3 was evicted.
        assert!(engine.nodes()[0].rib_stats().evictions > 0);
        engine.schedule_topology(
            engine.now() + 5.0,
            TopologyEvent::LinkDown {
                u: NodeId(0),
                v: NodeId(1),
            },
        );
        assert!(engine.run_until(|_| false), "repair must quiesce");
        let node = &engine.nodes()[0];
        let e = node.table.get(&NodeId(1)).expect("route re-solicited");
        assert_eq!(
            e.path.to_vec(),
            vec![NodeId(0), NodeId(3), NodeId(2), NodeId(1)]
        );
        assert!(
            node.refreshes_sent() > 0,
            "recovery must have used a route-refresh request"
        );
        let answered: u64 = engine.nodes().iter().map(|n| n.refreshes_answered()).sum();
        assert!(answered > 0);
    }

    /// Under churn with the vicinity cap, forgetful nodes keep repairing
    /// correctly: distances stay shortest-path after quiescence.
    #[test]
    fn forgetful_repairs_track_graph_under_churn() {
        let g = generators::gnm_connected(48, 192, 23);
        let mut engine = Engine::new(&g, |v| {
            let mut pv = PathVectorNode::new(v, v == NodeId(0), TableLimit::Unlimited);
            pv.set_forgetful_rib(Some(1));
            pv
        });
        assert!(engine.run().converged);
        let t0 = engine.now() + 10.0;
        let events = vec![
            TopologyEvent::NodeLeave { node: NodeId(30) },
            TopologyEvent::LinkDown {
                u: NodeId(5),
                v: g.neighbors(NodeId(5))[0].node,
            },
            TopologyEvent::NodeJoin {
                node: NodeId(30),
                links: vec![(NodeId(1), 1.0), (NodeId(2), 1.0)],
            },
            TopologyEvent::LinkDown {
                u: NodeId(9),
                v: g.neighbors(NodeId(9))[1].node,
            },
        ];
        for (i, ev) in events.into_iter().enumerate() {
            engine.schedule_topology(t0 + i as f64 * 3.0, ev);
        }
        assert!(engine.run_until(|_| false), "repair must quiesce");
        let current = engine.graph();
        for v in [NodeId(0), NodeId(5), NodeId(9), NodeId(30), NodeId(47)] {
            let truth = dijkstra(current, v);
            for (d, e) in &engine.nodes()[v.0].table {
                let want = truth.distance(*d).expect("reachable");
                assert!(
                    (e.dist - want).abs() < 1e-9,
                    "{v}→{d}: forgetful table {} vs dijkstra {want}",
                    e.dist
                );
            }
        }
    }

    /// Regression: withdrawing the *non-selected* neighbor's candidate —
    /// the only landmark-flagged one — must clear the OR-merged landmark
    /// flag on the selection and the table entry (the index-threaded
    /// refresh once bailed out on the withdrawal path, where no
    /// destination index is in hand, leaving the stale flag alive).
    #[test]
    fn withdrawing_nonselected_landmark_candidate_clears_or_merged_flag() {
        use disco_graph::GraphBuilder;
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        let g = b.build();
        let mut pv = PathVectorNode::new(NodeId(0), false, TableLimit::Unlimited);
        let mut ctx: disco_sim::Context<'_, Announcement> =
            disco_sim::Context::new(NodeId(0), 0.0, &g, 64);
        pv.on_start(&mut ctx);
        let ann = |dist: f64, path: &[NodeId], lm: bool, withdrawn: bool| Announcement {
            dest: NodeId(3),
            dist,
            path: InternedPath::from_slice(path),
            dest_is_landmark: lm,
            dest_landmark_dist: if lm { 0.0 } else { f64::INFINITY },
            withdrawn,
            refresh: false,
        };
        // Neighbor 1: the better route, not landmark-flagged.
        pv.on_message(
            NodeId(1),
            ann(1.0, &[NodeId(1), NodeId(3)], false, false),
            &mut ctx,
        );
        // Neighbor 2: worse route, landmark-flagged (transient disagreement
        // while a promotion floods). The OR-merge flags the selection.
        pv.on_message(
            NodeId(2),
            ann(2.0, &[NodeId(2), NodeId(3)], true, false),
            &mut ctx,
        );
        assert!(pv.table[&NodeId(3)].dest_is_landmark, "OR-merge must flag");
        assert_eq!(pv.own_landmark_distance(), 2.0);
        // Neighbor 2 withdraws: the only landmark-flagged candidate is
        // gone; the selection (still via neighbor 1) must lose the flag.
        pv.on_message(
            NodeId(2),
            ann(2.0, &[NodeId(2), NodeId(3)], true, true),
            &mut ctx,
        );
        assert!(
            !pv.table[&NodeId(3)].dest_is_landmark,
            "stale OR-merged landmark flag survived the withdrawal"
        );
        assert!(pv.own_landmark_distance().is_infinite());
    }

    #[test]
    fn promotion_floods_new_landmark() {
        let g = generators::ring(8);
        let lm_set = crate::landmark::landmark_set(&[NodeId(0)]);
        let mut engine = Engine::new(&g, |v| {
            PathVectorNode::new(v, lm_set.contains(&v), TableLimit::VicinityCap { size: 2 })
        });
        assert!(engine.run().converged);
        // Promote node 4 out of band and let it flood.
        let anns = engine.nodes_mut()[4].promote_to_landmark();
        assert!(!anns.is_empty());
        for ann in anns {
            for nb in [NodeId(3), NodeId(5)] {
                engine.inject_message(NodeId(4), nb, ann.clone(), 0.1);
            }
        }
        assert!(engine.run_until(|_| false));
        for v in g.nodes() {
            assert!(
                engine.nodes()[v.0]
                    .landmark_entries()
                    .any(|(&lm, _)| lm == NodeId(4)),
                "{v} did not learn the promoted landmark"
            );
        }
    }
}
