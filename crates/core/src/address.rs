//! Node addresses (paper §4.2).
//!
//! The address of node `v` is the identifier of its closest landmark `ℓ_v`
//! paired with the information needed to forward along `ℓ_v ; v` — an
//! explicit route of compact per-hop labels ([`crate::label`]). Addresses
//! are location-*dependent*, but they are used only internally by the
//! protocol and are dynamically updated as the topology changes; the
//! externally visible identifier of a node remains its flat name.

use crate::label::ExplicitRoute;
use disco_graph::{Graph, NodeId, Path};
use serde::{Deserialize, Serialize};

/// How many bytes a node identifier occupies on the wire when computing
/// address / routing-table sizes. The paper's Table 7 reports both an
/// IPv4-sized (4-byte) and an IPv6-sized (16-byte) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdentifierSize {
    /// 4-byte identifiers (IPv4-sized).
    V4,
    /// 16-byte identifiers (IPv6-sized).
    V6,
}

impl IdentifierSize {
    /// Bytes per node identifier.
    pub fn bytes(self) -> usize {
        match self {
            IdentifierSize::V4 => 4,
            IdentifierSize::V6 => 16,
        }
    }
}

/// The routing address of a node: its closest landmark plus the explicit
/// route from that landmark to the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Address {
    /// The node this address belongs to.
    pub node: NodeId,
    /// The node's closest landmark `ℓ_v`.
    pub landmark: NodeId,
    /// Distance `d(ℓ_v, v)` along the embedded route.
    pub landmark_distance: f64,
    /// Explicit route `ℓ_v ; v` as compact per-hop labels.
    pub route: ExplicitRoute,
}

impl Address {
    /// Build the address of `node` given the shortest path from its closest
    /// landmark (`path` must run landmark → node).
    pub fn from_landmark_path(g: &Graph, node: NodeId, path: &Path) -> Self {
        assert_eq!(
            path.destination(),
            node,
            "address path must end at the node"
        );
        Address {
            node,
            landmark: path.source(),
            landmark_distance: path.length(g),
            route: ExplicitRoute::from_path(g, path),
        }
    }

    /// Address of a landmark itself: the empty route.
    pub fn landmark_self(node: NodeId) -> Self {
        Address {
            node,
            landmark: node,
            landmark_distance: 0.0,
            route: ExplicitRoute::empty(node),
        }
    }

    /// The explicit route expanded back to a node path (landmark → node).
    pub fn route_path(&self, g: &Graph) -> Option<Path> {
        self.route.to_path(g)
    }

    /// Size of the address in bytes: one node identifier for the landmark
    /// plus the compact explicit route. This is the quantity the paper
    /// measures in §4.2 (mean 2.93 B for the route part on the router-level
    /// map) and uses in Table 7's byte accounting.
    pub fn size_bytes(&self, g: &Graph, id_size: IdentifierSize) -> usize {
        id_size.bytes() + self.route.encoded_bytes(g)
    }

    /// Size of only the explicit-route part in bytes.
    pub fn route_bytes(&self, g: &Graph) -> usize {
        self.route.encoded_bytes(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_graph::{generators, shortest_path};

    #[test]
    fn identifier_sizes() {
        assert_eq!(IdentifierSize::V4.bytes(), 4);
        assert_eq!(IdentifierSize::V6.bytes(), 16);
    }

    #[test]
    fn address_from_path_roundtrips() {
        let g = generators::gnm_connected(100, 400, 3);
        let landmark = NodeId(7);
        let spt = shortest_path::dijkstra(&g, landmark);
        let node = NodeId(42);
        let path = spt.path_to(node).unwrap();
        let addr = Address::from_landmark_path(&g, node, &path);
        assert_eq!(addr.landmark, landmark);
        assert_eq!(addr.node, node);
        assert!((addr.landmark_distance - path.length(&g)).abs() < 1e-9);
        assert_eq!(addr.route_path(&g).unwrap(), path);
        assert!(addr.size_bytes(&g, IdentifierSize::V4) >= 4);
        assert_eq!(
            addr.size_bytes(&g, IdentifierSize::V6) - addr.size_bytes(&g, IdentifierSize::V4),
            12
        );
    }

    #[test]
    fn landmark_self_address_is_empty() {
        let g = generators::ring(8);
        let addr = Address::landmark_self(NodeId(3));
        assert_eq!(addr.landmark, NodeId(3));
        assert_eq!(addr.landmark_distance, 0.0);
        assert_eq!(addr.route_bytes(&g), 0);
        assert_eq!(addr.size_bytes(&g, IdentifierSize::V4), 4);
    }

    #[test]
    #[should_panic]
    fn address_path_must_end_at_node() {
        let g = generators::ring(8);
        let spt = shortest_path::dijkstra(&g, NodeId(0));
        let path = spt.path_to(NodeId(3)).unwrap();
        // Claiming this is the address of node 5 is a bug.
        let _ = Address::from_landmark_path(&g, NodeId(5), &path);
    }
}
